package tier

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/queuesim/analytic"
	"mdsprint/internal/sweep"
)

// newTestEstimator builds an estimator over a fresh engine and a fresh
// metrics registry, so tests never share cache or counter state.
func newTestEstimator(t *testing.T, spec Spec, workers int) *Estimator {
	t.Helper()
	e, err := New(spec, Options{
		Engine:  sweep.New(sweep.Options{Workers: workers, Metrics: obs.NewRegistry()}),
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// mm1Task is a no-sprint M/M/1 the analytic tier fully describes; the
// large horizon keeps the error model under the default bound.
func mm1Task(lambda, mu float64, queries int, seed uint64) sweep.Task {
	return sweep.Task{Params: queuesim.Params{
		ArrivalRate: lambda,
		Service:     dist.NewExponential(mu),
		ServiceRate: mu,
		Timeout:     -1,
		NumQueries:  queries,
		Seed:        seed,
	}, Reps: 2}
}

// sprintTask is a sprint-enabled config the analytic gate rejects, so
// it must flow to the simulation tiers.
func sprintTask(queries int, seed uint64) sweep.Task {
	return sweep.Task{Params: queuesim.Params{
		ArrivalRate: 8, Service: dist.NewExponential(10), ServiceRate: 10,
		SprintRate: 18, Timeout: 0.12, BudgetSeconds: 20, RefillTime: 80,
		NumQueries: queries, Seed: seed,
	}, Reps: 2}
}

func predBits(p queuesim.Prediction) [3]uint64 {
	return [3]uint64{
		math.Float64bits(p.MeanRT),
		math.Float64bits(p.P95RT),
		math.Float64bits(p.P99RT),
	}
}

// TestAnalyticTierServes: an eligible M/M/1 query is answered by the
// closed form — exact mean, exact exponential-response quantiles, error
// estimate within the bound, and no simulation on the engine.
func TestAnalyticTierServes(t *testing.T) {
	est := newTestEstimator(t, Spec{}, 2)
	const lambda, mu = 0.5, 1.0
	pred, dec, err := est.Estimate(mm1Task(lambda, mu, 40000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Tier != TierAnalytic {
		t.Fatalf("tier %v (escalations %#x), want analytic", dec.Tier, dec.Escalations)
	}
	if want := 1 / (mu - lambda); pred.MeanRT != want {
		t.Fatalf("MeanRT %v, want exact %v", pred.MeanRT, want)
	}
	// M/M/1 FIFO response is Exp(mu-lambda): quantiles are closed-form.
	if want := math.Log(20) / (mu - lambda); math.Abs(pred.P95RT-want) > 1e-12 {
		t.Fatalf("P95 %v, want %v", pred.P95RT, want)
	}
	if want := math.Log(100) / (mu - lambda); math.Abs(pred.P99RT-want) > 1e-12 {
		t.Fatalf("P99 %v, want %v", pred.P99RT, want)
	}
	if !(dec.ErrEstimate > 0 && dec.ErrEstimate <= dec.Bound) {
		t.Fatalf("ErrEstimate %v outside (0, %v]", dec.ErrEstimate, dec.Bound)
	}
	if s := est.Engine().Stats(); s.Tasks != 0 {
		t.Fatalf("analytic answer touched the engine: %+v", s)
	}
	if s := est.Stats(); s.Answers != 1 || s.Analytic != 1 {
		t.Fatalf("stats %+v, want one analytic answer", s)
	}

	// A non-exponential service keeps the mean (P-K) but has no
	// closed-form quantiles: they must be NaN, never a fabrication.
	lp := mm1Task(lambda, mu, 40000, 2)
	lp.Params.Service = dist.Deterministic{Value: 1 / mu}
	pred, dec, err = est.Estimate(lp)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Tier != TierAnalytic {
		t.Fatalf("M/D/1 tier %v, want analytic", dec.Tier)
	}
	if !math.IsNaN(pred.P95RT) || !math.IsNaN(pred.P99RT) {
		t.Fatalf("M/D/1 quantiles %v/%v, want NaN", pred.P95RT, pred.P99RT)
	}
}

// TestCacheTierServes: once the full tier has paid for an answer, an
// identical query is served from the sweep cache, bit-identical.
func TestCacheTierServes(t *testing.T) {
	est := newTestEstimator(t, Spec{NoShort: true}, 2)
	task := sprintTask(600, 3)

	first, dec, err := est.Estimate(task)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Tier != TierFull {
		t.Fatalf("cold tier %v, want full", dec.Tier)
	}
	if dec.Escalations&EscAnalyticGate == 0 || dec.Escalations&EscCacheMiss == 0 || dec.Escalations&EscShortOff == 0 {
		t.Fatalf("cold escalations %#x missing gate|miss|shortoff", dec.Escalations)
	}

	second, dec, err := est.Estimate(task)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Tier != TierCache {
		t.Fatalf("warm tier %v, want cache", dec.Tier)
	}
	if dec.ErrEstimate != 0 {
		t.Fatalf("cache ErrEstimate %v, want 0", dec.ErrEstimate)
	}
	if predBits(first) != predBits(second) {
		t.Fatalf("cache answer %+v != full answer %+v", second, first)
	}
	s := est.Stats()
	if s.Answers != 2 || s.Full != 1 || s.Cache != 1 || s.CacheMisses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.CheapRate() != 0.5 {
		t.Fatalf("CheapRate %v, want 0.5", s.CheapRate())
	}
}

// TestShortTierServes: a sprint config under a loose bound is settled
// by short replications; the same config under a needle bound escalates
// to full with EscShortCI on record.
func TestShortTierServes(t *testing.T) {
	loose := newTestEstimator(t, Spec{Bound: 0.5, NoCache: true}, 2)
	task := sprintTask(4000, 5)
	pred, dec, err := loose.Estimate(task)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Tier != TierShort {
		t.Fatalf("loose tier %v (esc %#x, errEst %v), want short", dec.Tier, dec.Escalations, dec.ErrEstimate)
	}
	if !(dec.ErrEstimate > 0 && dec.ErrEstimate <= loose.Spec().Bound) {
		t.Fatalf("short ErrEstimate %v outside bound %v", dec.ErrEstimate, loose.Spec().Bound)
	}
	if !(pred.MeanRT > 0) || pred.Replications != loose.Spec().ShortReps {
		t.Fatalf("short prediction %+v", pred)
	}

	tight := newTestEstimator(t, Spec{Bound: 0.005, NoCache: true}, 2)
	_, dec, err = tight.Estimate(task)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Tier != TierFull {
		t.Fatalf("tight tier %v, want full", dec.Tier)
	}
	if dec.Escalations&EscShortCI == 0 {
		t.Fatalf("tight escalations %#x missing EscShortCI", dec.Escalations)
	}
}

// TestBypassTiers: tasks carrying a tracer or clock must reach the real
// evaluation (their side effects are the point), recorded as EscBypass.
func TestBypassTiers(t *testing.T) {
	est := newTestEstimator(t, Spec{}, 1)
	task := mm1Task(0.5, 1, 40000, 7)
	task.Params.Tracer = obs.NewRingTracer(64)
	_, dec, err := est.Estimate(task)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Tier != TierFull || dec.Escalations != EscBypass {
		t.Fatalf("traced task: tier %v esc %#x, want full/bypass", dec.Tier, dec.Escalations)
	}
	if est.Stats().Bypasses != 1 {
		t.Fatalf("stats %+v, want one bypass", est.Stats())
	}
}

// TestDisabledTiers: a spec with every cheap tier off degenerates to
// always-full — the configuration the differential baseline runs.
func TestDisabledTiers(t *testing.T) {
	est := newTestEstimator(t, Spec{NoAnalytic: true, NoCache: true, NoShort: true}, 2)
	task := mm1Task(0.5, 1, 2000, 9)
	for i := 0; i < 2; i++ {
		_, dec, err := est.Estimate(task)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Tier != TierFull {
			t.Fatalf("pass %d: tier %v, want full", i, dec.Tier)
		}
		want := EscAnalyticOff | EscCacheOff | EscShortOff
		if dec.Escalations != want {
			t.Fatalf("pass %d: escalations %#x, want %#x", i, dec.Escalations, want)
		}
	}
}

// TestEscalationMonotone is the property the ladder is named for:
// tightening the bound never picks a cheaper tier. Each bound gets a
// fresh estimator and engine so cache warming cannot mask an inversion.
func TestEscalationMonotone(t *testing.T) {
	bounds := []float64{1, 0.5, 0.25, 0.12, 0.06, 0.03, 0.015, 0.005}
	tasks := []sweep.Task{
		mm1Task(0.5, 1, 4000, 11),
		mm1Task(0.85, 1, 4000, 12),
		sprintTask(2000, 13),
	}
	for ti, task := range tasks {
		prev := TierAnalytic
		for _, b := range bounds {
			est := newTestEstimator(t, Spec{Bound: b}, 2)
			_, dec, err := est.Estimate(task)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Tier < prev {
				t.Fatalf("task %d: bound %v served by %v after %v served a looser bound — escalation not monotone",
					ti, b, dec.Tier, prev)
			}
			if dec.Bound != b {
				t.Fatalf("task %d: decision bound %v, want %v", ti, dec.Bound, b)
			}
			prev = dec.Tier
		}
	}
}

// TestEstimateAllMatchesEstimate: the batched path must reproduce the
// per-task path bit-for-bit — same tiers, same answers — given the same
// (fresh) engine state.
func TestEstimateAllMatchesEstimate(t *testing.T) {
	tasks := []sweep.Task{
		mm1Task(0.4, 1, 40000, 21),
		sprintTask(1200, 22),
		mm1Task(0.6, 1, 40000, 23),
		sprintTask(1200, 24),
		mm1Task(0.95, 1, 400, 25), // analytic bound blown: simulation tiers
	}

	batchEst := newTestEstimator(t, Spec{}, 4)
	preds, decs, err := batchEst.EstimateAll(tasks)
	if err != nil {
		t.Fatal(err)
	}

	serialEst := newTestEstimator(t, Spec{}, 4)
	for i, task := range tasks {
		p, d, err := serialEst.Estimate(task)
		if err != nil {
			t.Fatal(err)
		}
		if predBits(p) != predBits(preds[i]) {
			t.Fatalf("task %d: batch %+v != serial %+v", i, preds[i], p)
		}
		if d.Tier != decs[i].Tier || d.Escalations != decs[i].Escalations {
			t.Fatalf("task %d: batch decision %+v != serial %+v", i, decs[i], d)
		}
	}

	// MeanRTs is the same pass reduced to means.
	meansEst := newTestEstimator(t, Spec{}, 4)
	means, mdecs, err := meansEst.MeanRTs(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if math.Float64bits(means[i]) != math.Float64bits(preds[i].MeanRT) {
			t.Fatalf("task %d: MeanRTs %v != EstimateAll %v", i, means[i], preds[i].MeanRT)
		}
		if mdecs[i].Tier != decs[i].Tier {
			t.Fatalf("task %d: MeanRTs tier %v != EstimateAll %v", i, mdecs[i].Tier, decs[i].Tier)
		}
	}
}

// TestEstimateAllWorkerInvariance: answers are bit-identical at any
// sweep worker count — sharding is a throughput decision, never a
// semantic one.
func TestEstimateAllWorkerInvariance(t *testing.T) {
	tasks := []sweep.Task{
		sprintTask(1500, 31),
		mm1Task(0.7, 1, 40000, 32),
		sprintTask(1500, 33),
		sprintTask(1500, 34),
		mm1Task(0.9, 1, 600, 35),
	}
	var ref [][3]uint64
	var refTiers []Tier
	for _, workers := range []int{1, 4, 8} {
		est := newTestEstimator(t, Spec{}, workers)
		preds, decs, err := est.EstimateAll(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			for i := range preds {
				ref = append(ref, predBits(preds[i]))
				refTiers = append(refTiers, decs[i].Tier)
			}
			continue
		}
		for i := range preds {
			if predBits(preds[i]) != ref[i] {
				t.Fatalf("workers=%d task %d: %+v diverges from workers=1", workers, i, preds[i])
			}
			if decs[i].Tier != refTiers[i] {
				t.Fatalf("workers=%d task %d: tier %v != %v", workers, i, decs[i].Tier, refTiers[i])
			}
		}
	}
}

// TestAnalyticErrModel pins the error model's shape: grows with
// utilization and service variability, shrinks with simulated volume,
// infinite outside stability.
func TestAnalyticErrModel(t *testing.T) {
	p := func(lambda float64, queries int, service dist.Dist) queuesim.Params {
		return queuesim.Params{
			ArrivalRate: lambda, Service: service, ServiceRate: 1,
			Timeout: -1, NumQueries: queries,
		}.Canonical()
	}
	exp := dist.NewExponential(1)
	low := analyticErrEstimate(p(0.3, 30000, exp), 2)
	high := analyticErrEstimate(p(0.9, 30000, exp), 2)
	if !(low < high) {
		t.Fatalf("errEst not increasing in rho: %v !< %v", low, high)
	}
	small := analyticErrEstimate(p(0.7, 500, exp), 1)
	big := analyticErrEstimate(p(0.7, 50000, exp), 4)
	if !(big < small) {
		t.Fatalf("errEst not decreasing in volume: %v !< %v", big, small)
	}
	ln := dist.LogNormalFromMeanCV(1.0, 2.5)
	bursty := analyticErrEstimate(p(0.7, 30000, ln), 2)
	smooth := analyticErrEstimate(p(0.7, 30000, exp), 2)
	if !(bursty > smooth) {
		t.Fatalf("errEst ignores service variability: %v !> %v", bursty, smooth)
	}
	if v := analyticErrEstimate(p(1.2, 30000, exp), 2); !math.IsInf(v, 1) {
		t.Fatalf("overloaded errEst %v, want +Inf", v)
	}
}

// TestStatsAccounting covers Sub, Dominant and the tier partition.
func TestStatsAccounting(t *testing.T) {
	est := newTestEstimator(t, Spec{NoShort: true}, 2)
	before := est.Stats()
	if _, ok := before.Dominant(); ok {
		t.Fatal("empty stats claim a dominant tier")
	}
	if _, _, err := est.Estimate(mm1Task(0.5, 1, 40000, 41)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := est.Estimate(mm1Task(0.55, 1, 40000, 42)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := est.Estimate(sprintTask(400, 43)); err != nil {
		t.Fatal(err)
	}
	d := est.Stats().Sub(before)
	if d.Answers != 3 || d.Analytic != 2 || d.Full != 1 {
		t.Fatalf("delta %+v", d)
	}
	if d.Analytic+d.Cache+d.Short+d.Full != d.Answers {
		t.Fatalf("tiers do not partition answers: %+v", d)
	}
	if got, ok := d.Dominant(); !ok || got != TierAnalytic {
		t.Fatalf("Dominant = %v/%v, want analytic", got, ok)
	}
	if d.CheapRate() < 0.6 {
		t.Fatalf("CheapRate %v", d.CheapRate())
	}
}

// TestTierStrings pins the preinterned names the decision ledger
// records.
func TestTierStrings(t *testing.T) {
	want := map[Tier]string{TierAnalytic: "analytic", TierCache: "cache", TierShort: "short", TierFull: "full"}
	for tier, name := range want {
		if tier.String() != name {
			t.Fatalf("%d.String() = %q, want %q", tier, tier.String(), name)
		}
	}
	if Tier(200).String() != "none" {
		t.Fatalf("out-of-range tier name %q", Tier(200).String())
	}
}

// TestAnalyticAgreesWithEngine closes the loop between the tiers: the
// analytic answer and a real full evaluation of the same task must
// agree within the decision's advertised error estimate.
func TestAnalyticAgreesWithEngine(t *testing.T) {
	for _, lambda := range []float64{0.3, 0.5, 0.7} {
		task := mm1Task(lambda, 1, 30000, 51)
		est := newTestEstimator(t, Spec{}, 2)
		pred, dec, err := est.Estimate(task)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Tier != TierAnalytic {
			t.Fatalf("lambda %v: tier %v, want analytic", lambda, dec.Tier)
		}
		truth, err := est.Engine().Evaluate(task)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(pred.MeanRT-truth.MeanRT) / truth.MeanRT
		if rel > dec.ErrEstimate {
			t.Fatalf("lambda %v: realized error %v exceeds advertised estimate %v", lambda, rel, dec.ErrEstimate)
		}
	}
}

// TestMustAndNewValidate: constructor surface.
func TestMustAndNewValidate(t *testing.T) {
	if _, err := New(Spec{Bound: 2}, Options{}); err == nil {
		t.Fatal("New accepted bound=2")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Must did not panic on an invalid spec")
		}
	}()
	Must(Spec{ShortReps: 1}, Options{})
}

// TestAnalyticApplicabilityAgreement: the tier's gate and the analytic
// package agree — whenever analytic.Applicability accepts a no-tracer
// task, a fresh default estimator with a loose bound serves it
// analytically.
func TestAnalyticApplicabilityAgreement(t *testing.T) {
	tasks := []sweep.Task{
		mm1Task(0.5, 1, 20000, 61), // accepted
		sprintTask(800, 62),        // rejected: sprinting
		{Params: queuesim.Params{ // rejected: SERPT has no closed form
			ArrivalRate: 0.5, Service: dist.NewExponential(1), ServiceRate: 1,
			Timeout: -1, NumQueries: 20000, Seed: 63,
			Discipline: queuesim.Discipline{Kind: queuesim.DiscSERPT, PredictCV: 0.5},
		}, Reps: 2},
	}
	for i, task := range tasks {
		est := newTestEstimator(t, Spec{Bound: 1}, 2)
		_, dec, err := est.Estimate(task)
		if err != nil {
			t.Fatal(err)
		}
		eligible := analytic.Applicability(task.Params) == nil
		served := dec.Tier == TierAnalytic
		if eligible != served {
			t.Fatalf("task %d: applicability %v but tier %v (esc %#x)", i, eligible, dec.Tier, dec.Escalations)
		}
	}
}

func TestEscalationString(t *testing.T) {
	cases := []struct {
		esc  uint32
		want string
	}{
		{0, "-"},
		{EscBypass, "bypass"},
		{EscAnalyticGate | EscCacheMiss, "analytic-gate,cache-miss"},
		{EscAnalyticOff | EscCacheOff | EscShortOff, "analytic-off,cache-off,short-off"},
		{EscAnalyticBound | EscShortCI | EscShortErr, "analytic-bound,short-ci,short-err"},
	}
	for _, c := range cases {
		if got := (Decision{Escalations: c.esc}).EscalationString(); got != c.want {
			t.Errorf("EscalationString(%#x) = %q, want %q", c.esc, got, c.want)
		}
	}
}

// TestEstimateAllBatchErrorFallback poisons one task in a batch: the
// short pass's batch evaluation fails, the estimator re-resolves every
// shortable task serially (so the valid neighbors still get per-task
// answers), and the poisoned task's error surfaces instead of a silent
// zero prediction.
func TestEstimateAllBatchErrorFallback(t *testing.T) {
	est := newTestEstimator(t, Spec{NoAnalytic: true, NoCache: true}, 2)
	good := mm1Task(0.7, 1, 2000, 11)
	bad := mm1Task(0.7, 1, 2000, 12)
	bad.Params.ArrivalRate = -1 // rejected by the simulator's validation
	preds, decs, err := est.EstimateAll([]sweep.Task{good, bad})
	if err == nil {
		t.Fatal("poisoned batch returned no error")
	}
	if preds[0].MeanRT <= 0 {
		t.Fatalf("valid neighbor got no answer: %+v", preds[0])
	}
	if decs[1].Tier != TierFull || decs[1].Escalations&EscShortErr == 0 {
		t.Fatalf("poisoned task decision %+v: want full tier with short-err", decs[1])
	}
	// The valid task's serial-fallback answer must match what a direct
	// Estimate produces on a fresh estimator (same engine state rules).
	fresh := newTestEstimator(t, Spec{NoAnalytic: true, NoCache: true}, 2)
	want, wantDec, err := fresh.Estimate(good)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0] != want || decs[0].Tier != wantDec.Tier {
		t.Fatalf("fallback answer %+v (tier %v) != serial %+v (tier %v)", preds[0], decs[0].Tier, want, wantDec.Tier)
	}
}

// TestEstimateAllFullBatchError drives the NoShort path into a failing
// full-tier batch and checks the error propagates.
func TestEstimateAllFullBatchError(t *testing.T) {
	est := newTestEstimator(t, Spec{NoAnalytic: true, NoCache: true, NoShort: true}, 2)
	bad := mm1Task(0.5, 1, 1000, 3)
	bad.Params.ArrivalRate = -1
	if _, _, err := est.EstimateAll([]sweep.Task{bad}); err == nil {
		t.Fatal("invalid full-tier batch returned no error")
	}
}

func TestTaskRepsDefault(t *testing.T) {
	est := newTestEstimator(t, Spec{}, 1)
	task := mm1Task(0.4, 1, 4000, 5)
	task.Reps = 0 // the engine's default replication count applies
	_, dec, err := est.Estimate(task)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Tier != TierAnalytic {
		t.Fatalf("tier %v, want analytic", dec.Tier)
	}
}

func TestStatsCheapRateEmpty(t *testing.T) {
	if r := (Stats{}).CheapRate(); r != 0 {
		t.Fatalf("empty CheapRate = %v, want 0", r)
	}
	if _, ok := (Stats{}).Dominant(); ok {
		t.Fatal("empty snapshot has a dominant tier")
	}
}

func TestMustPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Must accepted an invalid spec")
		}
	}()
	Must(Spec{Bound: 2}, Options{Engine: sweep.New(sweep.Options{Metrics: obs.NewRegistry()}), Metrics: obs.NewRegistry()})
}
