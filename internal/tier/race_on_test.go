//go:build race

package tier

// raceEnabled gates allocation-budget tests under -race; see
// race_off_test.go.
const raceEnabled = true
