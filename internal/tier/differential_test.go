package tier

// Differential validation of the staged estimator: across a grid of
// discipline × dispatcher × service-distribution configurations, every
// answer a tiered estimator serves must land within its advertised
// error bound of the always-full baseline, and the whole tiered run
// must be reproducible — run twice from fresh state, bit-identical
// answers and identical tier choices, at any sweep worker count.

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/queuesim/dispatch"
	"mdsprint/internal/sweep"
)

// diffGrid covers the behavioural axes the PR 8 scheduling work added:
// every discipline with a closed form (and SERPT without one), the
// multi-queue dispatchers, light- and heavy-tailed service, and sprint
// configs the analytic gate must refuse.
func diffGrid() []sweep.Task {
	mustRandomD := func(d int) queuesim.Dispatcher {
		disp, err := dispatch.RandomD(d)
		if err != nil {
			panic(err)
		}
		return disp
	}
	base := func(lambda, mu float64, seed uint64) queuesim.Params {
		return queuesim.Params{
			ArrivalRate: lambda,
			Service:     dist.NewExponential(mu),
			ServiceRate: mu,
			Timeout:     -1,
			NumQueries:  3000,
			Seed:        seed,
		}
	}
	var tasks []sweep.Task
	add := func(p queuesim.Params) { tasks = append(tasks, sweep.Task{Params: p, Reps: 2}) }

	// Single-queue disciplines over exponential service.
	for i, kind := range []queuesim.DisciplineKind{
		queuesim.DiscFIFO, queuesim.DiscLIFO, queuesim.DiscSRPT, queuesim.DiscPS,
	} {
		p := base(0.6, 1, 100+uint64(i))
		p.Discipline = queuesim.Discipline{Kind: kind}
		add(p)
	}
	// SERPT: no closed form exists; the grid keeps one so the gate's
	// rejection path is part of the differential surface.
	{
		p := base(0.6, 1, 110)
		p.Discipline = queuesim.Discipline{Kind: queuesim.DiscSERPT, PredictCV: 0.5}
		add(p)
	}
	// Non-exponential service: deterministic (P-K route), uniform,
	// heavy-tailed log-normal under FIFO and PS.
	{
		p := base(0.6, 1, 120)
		p.Service = dist.Deterministic{Value: 1}
		add(p)
	}
	{
		p := base(0.6, 1, 121)
		p.Service = dist.Uniform{Lo: 0.4, Hi: 1.6}
		add(p)
	}
	{
		p := base(0.5, 1, 122)
		p.Service = dist.LogNormalFromMeanCV(1, 1.8)
		add(p)
	}
	{
		p := base(0.5, 1, 123)
		p.Service = dist.LogNormalFromMeanCV(1, 1.8)
		p.Discipline = queuesim.Discipline{Kind: queuesim.DiscPS}
		add(p)
	}
	// Multi-queue dispatchers (Servers > 1 is outside every closed
	// form except the central-queue M/M/k, which these are not).
	for i, d := range []queuesim.Dispatcher{
		dispatch.JSQ(), dispatch.RoundRobin(), dispatch.LeastWork(), mustRandomD(2),
	} {
		p := base(1.4, 1, 130+uint64(i))
		p.Servers = 2
		p.Dispatch = d
		add(p)
	}
	// Sprinting configurations: the analytic gate must refuse these and
	// the simulation tiers must still honor the bound.
	{
		p := base(8, 10, 140)
		p.SprintRate, p.Timeout, p.BudgetSeconds, p.RefillTime = 18, 0.12, 20, 80
		add(p)
	}
	{
		p := base(8, 10, 141)
		p.SprintRate, p.Timeout, p.BudgetSeconds, p.RefillTime = 16, 0.2, 6, 10
		p.Slots = 2
		add(p)
	}
	return tasks
}

// runTiered evaluates the grid on a fresh tiered estimator and returns
// answers and decisions.
func runTiered(t *testing.T, spec Spec, workers int, tasks []sweep.Task) ([]queuesim.Prediction, []Decision) {
	t.Helper()
	est, err := New(spec, Options{
		Engine:  sweep.New(sweep.Options{Workers: workers, Metrics: obs.NewRegistry()}),
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]queuesim.Prediction, len(tasks))
	decs := make([]Decision, len(tasks))
	for i, task := range tasks {
		p, d, err := est.Estimate(task)
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		preds[i] = p
		decs[i] = d
	}
	return preds, decs
}

// TestDifferentialTieredVsFull is the acceptance property: every tiered
// answer within its advertised bound of the always-full baseline.
func TestDifferentialTieredVsFull(t *testing.T) {
	tasks := diffGrid()
	spec := Spec{Bound: 0.2}

	// Ground truth: the same grid through a fully-degenerate estimator
	// (every cheap tier off), which by construction is engine full-rep.
	truth, truthDecs := runTiered(t, Spec{Bound: spec.Bound, NoAnalytic: true, NoCache: true, NoShort: true}, 4, tasks)
	for i, d := range truthDecs {
		if d.Tier != TierFull {
			t.Fatalf("baseline task %d served by %v", i, d.Tier)
		}
	}

	preds, decs := runTiered(t, spec, 4, tasks)
	tiersSeen := map[Tier]int{}
	for i := range tasks {
		tiersSeen[decs[i].Tier]++
		rel := math.Abs(preds[i].MeanRT-truth[i].MeanRT) / truth[i].MeanRT
		if rel > decs[i].Bound {
			t.Errorf("task %d (%s): tiered %.6g vs full %.6g — relative error %.4f exceeds bound %.2f (tier %v)",
				i, tasks[i].Params.Service, preds[i].MeanRT, truth[i].MeanRT, rel, decs[i].Bound, decs[i].Tier)
		}
		if decs[i].ErrEstimate > decs[i].Bound {
			t.Errorf("task %d: advertised estimate %.4f exceeds bound %.2f", i, decs[i].ErrEstimate, decs[i].Bound)
		}
	}
	// The grid must actually exercise the ladder: analytic answers for
	// the closed-form shapes, simulation tiers for the rest.
	if tiersSeen[TierAnalytic] == 0 {
		t.Errorf("grid never used the analytic tier: %v", tiersSeen)
	}
	if tiersSeen[TierShort]+tiersSeen[TierFull] == 0 {
		t.Errorf("grid never escalated to simulation: %v", tiersSeen)
	}
	t.Logf("tier usage across %d tasks: %v", len(tasks), tiersSeen)
}

// TestDifferentialRunTwiceDeterministic: the whole tiered run repeated
// from fresh state is bit-identical — answers and tier decisions.
func TestDifferentialRunTwiceDeterministic(t *testing.T) {
	tasks := diffGrid()
	spec := Spec{Bound: 0.2}
	p1, d1 := runTiered(t, spec, 4, tasks)
	p2, d2 := runTiered(t, spec, 4, tasks)
	for i := range tasks {
		if predBits(p1[i]) != predBits(p2[i]) {
			t.Fatalf("task %d: run 1 %+v != run 2 %+v", i, p1[i], p2[i])
		}
		if d1[i] != d2[i] {
			t.Fatalf("task %d: decisions differ: %+v vs %+v", i, d1[i], d2[i])
		}
	}
}

// TestDifferentialWorkerCountInvariant: the batched tiered run is
// bit-identical at any sweep worker count.
func TestDifferentialWorkerCountInvariant(t *testing.T) {
	tasks := diffGrid()
	spec := Spec{Bound: 0.2}
	var ref []queuesim.Prediction
	var refDecs []Decision
	for _, workers := range []int{1, 8} {
		est, err := New(spec, Options{
			Engine:  sweep.New(sweep.Options{Workers: workers, Metrics: obs.NewRegistry()}),
			Metrics: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		preds, decs, err := est.EstimateAll(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refDecs = preds, decs
			continue
		}
		for i := range tasks {
			if predBits(preds[i]) != predBits(ref[i]) {
				t.Fatalf("workers=%d task %d: %+v != workers=1 %+v", workers, i, preds[i], ref[i])
			}
			if decs[i] != refDecs[i] {
				t.Fatalf("workers=%d task %d: decision %+v != %+v", workers, i, decs[i], refDecs[i])
			}
		}
	}
}

// TestDifferentialBoundSweep re-runs the bound-honoring check at a
// tighter bound, where more of the grid escalates: the property must
// hold at every operating point, not just the loose one.
func TestDifferentialBoundSweep(t *testing.T) {
	tasks := diffGrid()
	truth, _ := runTiered(t, Spec{NoAnalytic: true, NoCache: true, NoShort: true}, 4, tasks)
	for _, bound := range []float64{0.3, 0.1, 0.05} {
		preds, decs := runTiered(t, Spec{Bound: bound}, 4, tasks)
		for i := range tasks {
			rel := math.Abs(preds[i].MeanRT-truth[i].MeanRT) / truth[i].MeanRT
			if rel > bound {
				t.Errorf("bound %.2f task %d: relative error %.4f (tier %v)", bound, i, rel, decs[i].Tier)
			}
		}
	}
}
