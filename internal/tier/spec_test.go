package tier

import (
	"strings"
	"testing"
)

// TestSpecZeroValueAndString pins the zero-value contract: all tiers
// on, defaults everywhere, canonical rendering.
func TestSpecZeroValueAndString(t *testing.T) {
	var s Spec
	if err := s.Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	const want = "bound=0.1,analytic,cache,short(div=8,reps=4,ci=0.5)"
	if got := s.String(); got != want {
		t.Fatalf("zero spec renders %q, want %q", got, want)
	}
	parsed, err := ParseTierSpec("")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if parsed != s.withDefaults() {
		t.Fatalf("empty parse %+v != resolved zero %+v", parsed, s.withDefaults())
	}
}

// TestParseTierSpecRoundTrip: parse -> String -> re-parse must be the
// identity on the resolved spec, and String idempotent.
func TestParseTierSpecRoundTrip(t *testing.T) {
	inputs := []string{
		"",
		"bound=0.05",
		"bound=0.2,-analytic",
		"-cache",
		"-short",
		"-analytic,-cache,-short",
		"short(div=16,reps=8,ci=0.25)",
		"bound=1,short(div=2,reps=2,ci=1)",
		"  bound=0.3 , cache , short( div=4 , reps=3 )  ",
		"analytic,cache,short",
		"bound=0.125,short(ci=0.75)",
	}
	for _, in := range inputs {
		s1, err := ParseTierSpec(in)
		if err != nil {
			t.Fatalf("ParseTierSpec(%q): %v", in, err)
		}
		text := s1.String()
		s2, err := ParseTierSpec(text)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", text, in, err)
		}
		if s1 != s2 {
			t.Fatalf("%q: round trip %+v -> %q -> %+v", in, s1, text, s2)
		}
		if again := s2.String(); again != text {
			t.Fatalf("%q: String not idempotent: %q then %q", in, text, again)
		}
	}
}

// TestParseTierSpecRejects pins the parser's rejection surface,
// including the explicit-zero hole (a literal 0 must not silently
// resolve to the default).
func TestParseTierSpecRejects(t *testing.T) {
	bad := []string{
		"bound=0",
		"bound=-0",
		"bound=-0.1",
		"bound=1.5",
		"bound=nan",
		"bound=+inf",
		"bound=",
		"bound=x",
		"short(div=0)",
		"short(div=1)",
		"short(div=-4)",
		"short(reps=0)",
		"short(reps=1)",
		"short(reps=99)",
		"short(ci=0)",
		"short(ci=2)",
		"short(frob=1)",
		"turbo",
		"short(div=8",
		"bound=0.1,,bogus",
	}
	for _, in := range bad {
		if s, err := ParseTierSpec(in); err == nil {
			t.Fatalf("ParseTierSpec(%q) accepted as %+v", in, s)
		}
	}
}

// TestValidateBounds exercises Validate directly on structurally bad
// specs that the parser cannot produce.
func TestValidateBounds(t *testing.T) {
	cases := []struct {
		name string
		s    Spec
		frag string
	}{
		{"bound-high", Spec{Bound: 1.5}, "bound"},
		{"bound-neg", Spec{Bound: -0.1}, "bound"},
		{"div-low", Spec{ShortDiv: 1}, "div"},
		{"reps-low", Spec{ShortReps: 1}, "reps"},
		{"reps-high", Spec{ShortReps: maxShortReps + 1}, "reps"},
		{"ci-high", Spec{CIFrac: 1.5}, "ci"},
		{"ci-neg", Spec{CIFrac: -1}, "ci"},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted %+v", c.name, c.s)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}
