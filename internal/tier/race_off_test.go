//go:build !race

package tier

// raceEnabled gates allocation-budget tests: the race detector
// instruments allocations, so AllocsPerRun assertions only hold in
// non-race builds.
const raceEnabled = false
