package tier

import (
	"testing"

	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sweep"
)

// TestTierAnalyticZeroAllocs pins the analytic fast path at zero
// steady-state heap allocations: canonicalization, the applicability
// gate, the closed form, the error model and the metrics recording all
// stay on the stack. This is the path the sprintd decide loop rides, so
// an allocation here is a serving-throughput regression, not a style
// nit.
func TestTierAnalyticZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under -race instrumentation")
	}
	est, err := New(Spec{}, Options{
		Engine:  sweep.New(sweep.Options{Metrics: obs.NewRegistry()}),
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	task := mm1Task(0.5, 1, 40000, 1)

	// Prime once (lazy init anywhere in the chain is allowed exactly
	// one shot), then demand zero.
	if _, dec, err := est.Estimate(task); err != nil || dec.Tier != TierAnalytic {
		t.Fatalf("prime: tier %v err %v, want analytic", dec.Tier, err)
	}
	var pred queuesim.Prediction
	var dec Decision
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		pred, dec, err = est.Estimate(task)
		if err != nil {
			t.Fatal(err)
		}
	})
	if dec.Tier != TierAnalytic {
		t.Fatalf("steady state escalated to %v", dec.Tier)
	}
	if pred.MeanRT != 2 {
		t.Fatalf("M/M/1 mean %v, want 2", pred.MeanRT)
	}
	if allocs != 0 {
		t.Fatalf("analytic Estimate allocates %v per op, want 0", allocs)
	}

	// MeanRT is the same path minus the struct plumbing.
	allocs = testing.AllocsPerRun(200, func() {
		if _, _, err := est.MeanRT(task); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("analytic MeanRT allocates %v per op, want 0", allocs)
	}
}
