// Package tier is a staged response-time estimator, the SkipPredict
// idea applied to this repository's own prediction stack: every model
// query pays wildly different costs for the same answer — a queueing
// closed form is ~free, a memoized sweep result costs a cache lookup, a
// short simulation costs milliseconds, a full-replication simulation
// costs the most — so each query should be answered by the cheapest
// tier whose error bound suffices.
//
// The ladder, cheapest first:
//
//	analytic  closed forms (internal/queuesim/analytic) behind an
//	          applicability gate and a calibrated error model;
//	cache     a completed sweep-engine memoization hit — the full
//	          answer at lookup cost, error zero by construction;
//	short     a few short replications, served only when their 95%
//	          confidence interval fits inside the bound;
//	full      the full-replication simulation, ground truth.
//
// Escalation is monotone in the bound: tightening the bound can only
// move a query to the same or a more expensive tier, never a cheaper
// one (the property tests pin this). Answers are deterministic: the
// same task against the same engine state produces bit-identical
// results at any sweep worker count, because every simulation runs
// through the sweep engine's determinism contract.
package tier

import (
	"math"
	"strings"
	"sync/atomic"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/queuesim/analytic"
	"mdsprint/internal/sweep"
)

// Tier identifies the ladder rung that served an answer, cheapest
// first.
type Tier uint8

// The ladder, in escalation order.
const (
	TierAnalytic Tier = iota
	TierCache
	TierShort
	TierFull
	numTiers
)

// Tier name strings are preinterned constants so recording a tier on a
// hot path (decision ledgers, span attributes) never allocates.
const (
	tierAnalyticName = "analytic"
	tierCacheName    = "cache"
	tierShortName    = "short"
	tierFullName     = "full"
	tierNoneName     = "none"
)

// String names the tier ("analytic", "cache", "short", "full").
func (t Tier) String() string {
	switch t {
	case TierAnalytic:
		return tierAnalyticName
	case TierCache:
		return tierCacheName
	case TierShort:
		return tierShortName
	case TierFull:
		return tierFullName
	}
	return tierNoneName
}

// Escalation reasons, recorded as a bitmask on each Decision: why every
// tier cheaper than the serving one was passed over.
const (
	// EscBypass: the task carries a Tracer or Clock, whose side effects
	// only a real full evaluation produces — straight to ground truth.
	EscBypass uint32 = 1 << iota
	// EscAnalyticOff / EscCacheOff / EscShortOff: the tier is disabled
	// by the spec.
	EscAnalyticOff
	EscCacheOff
	EscShortOff
	// EscAnalyticGate: no closed form applies to the task's shape.
	EscAnalyticGate
	// EscAnalyticBound: a closed form applies, but the error model says
	// its disagreement with finite-replication ground truth may exceed
	// the bound.
	EscAnalyticBound
	// EscCacheMiss: the task is not memoized (or still in flight).
	EscCacheMiss
	// EscShortCI: the short replications' confidence interval is too
	// wide for the bound.
	EscShortCI
	// EscShortErr: a short replication failed; the full tier owns error
	// reporting.
	EscShortErr
)

// Decision is the provenance of one answer: which tier served, under
// what bound, with what estimated relative error, and why cheaper tiers
// were skipped.
type Decision struct {
	Tier Tier
	// Bound is the spec's error bound the answer honors; ErrEstimate is
	// the serving tier's own estimate of its relative error against
	// full-replication ground truth (0 for the cache and full tiers,
	// which are ground truth).
	Bound       float64
	ErrEstimate float64
	// Escalations is the bitmask of Esc* reasons recorded while walking
	// past cheaper tiers.
	Escalations uint32
}

// escalationNames orders the Esc* bits for rendering, cheapest skipped
// tier first.
var escalationNames = []struct {
	bit  uint32
	name string
}{
	{EscBypass, "bypass"},
	{EscAnalyticOff, "analytic-off"},
	{EscCacheOff, "cache-off"},
	{EscShortOff, "short-off"},
	{EscAnalyticGate, "analytic-gate"},
	{EscAnalyticBound, "analytic-bound"},
	{EscCacheMiss, "cache-miss"},
	{EscShortCI, "short-ci"},
	{EscShortErr, "short-err"},
}

// EscalationString renders the escalation bitmask as a comma-separated
// reason list ("-" when no cheaper tier was skipped) — the operator
// view in sprintctl tiers and ledger dumps.
func (d Decision) EscalationString() string {
	if d.Escalations == 0 {
		return "-"
	}
	var b strings.Builder
	for _, e := range escalationNames {
		if d.Escalations&e.bit == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.name)
	}
	return b.String()
}

// Options configures an Estimator.
type Options struct {
	// Engine serves the cache tier's lookups and runs the short and
	// full tiers' simulations; nil uses sweep.Shared().
	Engine *sweep.Engine
	// Metrics receives the mdsprint_tier_* instruments; nil records
	// into obs.Default().
	Metrics *obs.Registry
}

// Estimator answers simulator tasks with the cheapest sufficient tier.
// It is safe for concurrent use; the analytic and cache paths perform
// no steady-state heap allocations.
type Estimator struct {
	spec Spec
	eng  *sweep.Engine

	answers atomic.Uint64
	byTier  [numTiers]atomic.Uint64
	gates   atomic.Uint64 // EscAnalyticGate occurrences
	bounds  atomic.Uint64 // EscAnalyticBound occurrences
	misses  atomic.Uint64 // EscCacheMiss occurrences
	wideCIs atomic.Uint64 // EscShortCI/EscShortErr occurrences
	bypass  atomic.Uint64 // EscBypass occurrences

	m tierMetrics
}

type tierMetrics struct {
	answers *obs.Counter
	byTier  [numTiers]*obs.Counter
	gates   *obs.Counter
	bounds  *obs.Counter
	misses  *obs.Counter
	wideCIs *obs.Counter
	bypass  *obs.Counter
	errEst  *obs.Histogram
}

// New validates the spec and returns an estimator over the engine.
func New(spec Spec, o Options) (*Estimator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	reg := obs.Or(o.Metrics)
	e := &Estimator{
		spec: spec.withDefaults(),
		eng:  sweep.Or(o.Engine),
		m: tierMetrics{
			answers: reg.Counter("mdsprint_tier_answers_total", "queries answered by the staged estimator"),
			byTier: [numTiers]*obs.Counter{
				reg.Counter("mdsprint_tier_analytic_total", "queries served by the analytic closed-form tier"),
				reg.Counter("mdsprint_tier_cache_total", "queries served by the sweep-cache tier"),
				reg.Counter("mdsprint_tier_short_total", "queries served by the short-replication tier"),
				reg.Counter("mdsprint_tier_full_total", "queries served by full-replication simulation"),
			},
			gates:   reg.Counter("mdsprint_tier_esc_analytic_gate_total", "escalations because no closed form applies"),
			bounds:  reg.Counter("mdsprint_tier_esc_analytic_bound_total", "escalations because the analytic error model exceeds the bound"),
			misses:  reg.Counter("mdsprint_tier_esc_cache_miss_total", "escalations because the task is not memoized"),
			wideCIs: reg.Counter("mdsprint_tier_esc_short_ci_total", "escalations because the short tier's confidence interval is too wide (or a short replication failed)"),
			bypass:  reg.Counter("mdsprint_tier_esc_bypass_total", "tasks sent straight to full evaluation (tracer or clock attached)"),
			errEst:  reg.Histogram("mdsprint_tier_err_estimate", "serving tier's estimated relative error vs full-replication ground truth", 0),
		},
	}
	return e, nil
}

// Must is New for statically known specs; it panics on invalid ones.
func Must(spec Spec, o Options) *Estimator {
	e, err := New(spec, o)
	if err != nil {
		panic(err.Error())
	}
	return e
}

// Spec returns the resolved spec.
func (e *Estimator) Spec() Spec { return e.spec }

// Engine returns the sweep engine backing the cache, short and full
// tiers.
func (e *Estimator) Engine() *sweep.Engine { return e.eng }

// Stats is a point-in-time snapshot of the estimator's counters.
type Stats struct {
	// Answers is every query served; Analytic..Full partition it by
	// serving tier.
	Answers                      uint64
	Analytic, Cache, Short, Full uint64
	// Escalation-reason occurrences (one query can record several).
	AnalyticGates, AnalyticBounds  uint64
	CacheMisses, WideCIs, Bypasses uint64
}

// Stats snapshots the counters.
func (e *Estimator) Stats() Stats {
	return Stats{
		Answers:        e.answers.Load(),
		Analytic:       e.byTier[TierAnalytic].Load(),
		Cache:          e.byTier[TierCache].Load(),
		Short:          e.byTier[TierShort].Load(),
		Full:           e.byTier[TierFull].Load(),
		AnalyticGates:  e.gates.Load(),
		AnalyticBounds: e.bounds.Load(),
		CacheMisses:    e.misses.Load(),
		WideCIs:        e.wideCIs.Load(),
		Bypasses:       e.bypass.Load(),
	}
}

// Sub returns the per-field difference s - prev, for windowed views
// (e.g. the answers one decision consumed).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Answers:        s.Answers - prev.Answers,
		Analytic:       s.Analytic - prev.Analytic,
		Cache:          s.Cache - prev.Cache,
		Short:          s.Short - prev.Short,
		Full:           s.Full - prev.Full,
		AnalyticGates:  s.AnalyticGates - prev.AnalyticGates,
		AnalyticBounds: s.AnalyticBounds - prev.AnalyticBounds,
		CacheMisses:    s.CacheMisses - prev.CacheMisses,
		WideCIs:        s.WideCIs - prev.WideCIs,
		Bypasses:       s.Bypasses - prev.Bypasses,
	}
}

// CheapRate is the fraction of answers served below simulation cost
// (analytic + cache), 0 before any answers.
func (s Stats) CheapRate() float64 {
	if s.Answers == 0 {
		return 0
	}
	return float64(s.Analytic+s.Cache) / float64(s.Answers)
}

// Dominant returns the tier that served the most answers in this
// snapshot (cheapest wins ties) — the ledger's one-word summary of a
// window. The boolean is false when the snapshot holds no answers.
func (s Stats) Dominant() (Tier, bool) {
	if s.Answers == 0 {
		return TierFull, false
	}
	counts := [numTiers]uint64{s.Analytic, s.Cache, s.Short, s.Full}
	best := TierAnalytic
	for t := TierCache; t < numTiers; t++ {
		if counts[t] > counts[best] {
			best = t
		}
	}
	return best, true
}

// Calibration of the estimator's error models. The analytic answer is
// an exact property of the queueing model; its disagreement with a
// finite simulation is the simulation's own noise, which grows with
// utilization (autocorrelation near saturation slows the CLT) and
// service variability, and shrinks with the square root of the total
// simulated queries. The base and CLT constants are fitted to the
// tolerance schedule the simulator itself is validated under
// (queuesim's analytic tests: 0.04 at rho 0.3, 0.06 at rho 0.7, 0.12
// at rho 0.9, all at n=60000):
//
//	cltTerm = clt * (rho/(1-rho)) / sqrt(n) * cvFactor
//	errEst  = base + cltTerm
//
// cvFactor is quadratic in the service distribution's (1+scv)/2 once
// scv exceeds 1: heavy tails both widen the per-sample variance and
// lengthen the autocorrelation time, so a square-root correction alone
// provably under-covers (a log-normal with cv 1.8 at rho 0.5 and
// n=6000 realizes ~20% deviation; the linear model advertised 9%).
const (
	simErrBase = 0.03
	simErrCLT  = 3.0
)

// cltTerm is the congestion-scaled sampling-noise term for canonical
// params c observed over n simulated queries; +Inf when the nominal
// (no-sprint) load is unstable — sprinting may stabilize the real
// queue, but then no cheap model of its noise exists either.
func cltTerm(c queuesim.Params, n float64) float64 {
	meanS := c.Service.Mean()
	servers := c.Servers
	if servers < 1 {
		servers = 1
	}
	rho := c.ArrivalRate * meanS / (float64(c.Slots) * float64(servers))
	if !(rho > 0 && rho < 1) {
		return math.Inf(1)
	}
	cvFactor := 1.0
	if m2, ok := dist.SecondMoment(c.Service); ok && !math.IsInf(m2, 1) {
		if f := (1 + (m2-meanS*meanS)/(meanS*meanS)) / 2; f > 1 {
			cvFactor = f * f
		}
	}
	return simErrCLT * (rho / (1 - rho)) / math.Sqrt(n) * cvFactor
}

// analyticErrEstimate bounds the analytic tier's disagreement with
// ground truth pooling reps full replications of c.
func analyticErrEstimate(c queuesim.Params, reps int) float64 {
	return simErrBase + cltTerm(c, float64(reps*c.NumQueries))
}

// Seed salt and stride for the short tier's replications: salted so the
// short runs are decorrelated from the full tier's replications of the
// same seed, strided (same odd constant as queuesim's replication
// seeding) so each short replication is independent.
const (
	tierSeedSalt   uint64 = 0x7469657273616c74 // "tiersalt"
	tierSeedStride uint64 = 0x9e3779b97f4a7c15
)

// minShortQueries floors the short replications' horizon: below this,
// warmup transients dominate and the CI is meaningless.
const minShortQueries = 100

// tCrit95 are two-sided 95% Student-t critical values by degrees of
// freedom (index df-1), covering reps in [2, maxShortReps].
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
	2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
}

const maxShortReps = len(tCrit95) + 1

// shortTask derives the i-th short replication of base (already
// canonical): a NumQueries/ShortDiv horizon on a salted, strided seed.
func (e *Estimator) shortTask(base queuesim.Params, i int) sweep.Task {
	p := base
	q := p.NumQueries / e.spec.ShortDiv
	if q < minShortQueries {
		q = minShortQueries
	}
	p.NumQueries = q
	p.Warmup = q / 10
	p.Seed = (p.Seed ^ tierSeedSalt) + uint64(i)*tierSeedStride
	return sweep.Task{Params: p, Reps: 1}
}

// shortVerdict reduces the short replications' predictions to a pooled
// answer and an error estimate: the 95% relative CI halfwidth plus the
// congestion CLT term at the short volume. The CI only sees cross-rep
// sampling noise; the CLT term covers what it cannot — the shared
// truncated-horizon bias and the full-rep ground truth's own noise. ok
// reports whether the CI fits the spec's CI budget and the combined
// estimate fits the bound.
func (e *Estimator) shortVerdict(c queuesim.Params, subs []queuesim.Prediction) (queuesim.Prediction, float64, bool) {
	r := len(subs)
	mean := 0.0
	p95 := 0.0
	p99 := 0.0
	queries := 0
	for _, s := range subs {
		mean += s.MeanRT
		p95 += s.P95RT
		p99 += s.P99RT
		queries += s.QueriesSimulated
	}
	rf := float64(r)
	mean /= rf
	if !(mean > 0) {
		return queuesim.Prediction{}, math.Inf(1), false
	}
	varsum := 0.0
	for _, s := range subs {
		d := s.MeanRT - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / (rf - 1))
	rel := tCrit95[r-2] * sd / math.Sqrt(rf) / mean
	pred := queuesim.Prediction{
		MeanRT:           mean,
		P95RT:            p95 / rf,
		P99RT:            p99 / rf,
		Replications:     r,
		QueriesSimulated: queries,
	}
	errEst := rel + cltTerm(c, float64(queries))
	return pred, errEst, rel <= e.spec.CIFrac*e.spec.Bound && errEst <= e.spec.Bound
}

// record counts one served answer.
func (e *Estimator) record(t Tier, errEst float64, esc uint32) {
	e.answers.Add(1)
	e.m.answers.Inc()
	e.byTier[t].Add(1)
	e.m.byTier[t].Inc()
	if esc&EscAnalyticGate != 0 {
		e.gates.Add(1)
		e.m.gates.Inc()
	}
	if esc&EscAnalyticBound != 0 {
		e.bounds.Add(1)
		e.m.bounds.Inc()
	}
	if esc&EscCacheMiss != 0 {
		e.misses.Add(1)
		e.m.misses.Inc()
	}
	if esc&(EscShortCI|EscShortErr) != 0 {
		e.wideCIs.Add(1)
		e.m.wideCIs.Inc()
	}
	if esc&EscBypass != 0 {
		e.bypass.Add(1)
		e.m.bypass.Inc()
	}
	e.m.errEst.Observe(errEst)
}

// taskReps resolves a task's replication count the way the sweep engine
// does.
func taskReps(t sweep.Task) int {
	if t.Reps <= 0 {
		return 1
	}
	return t.Reps
}

// tryAnalytic attempts the analytic tier for canonical params c. On
// success it returns the prediction; otherwise it returns the
// escalation reason bit. Quantiles are exact for the M/M/1-FIFO shape
// (whose response time is exponential) and NaN otherwise — like the
// direct-mapping ANN, a closed-form mean does not come with simulated
// percentiles.
func (e *Estimator) tryAnalytic(c queuesim.Params, reps int) (queuesim.Prediction, float64, uint32) {
	if e.spec.NoAnalytic {
		return queuesim.Prediction{}, 0, EscAnalyticOff
	}
	mean, err := analytic.MeanRT(c)
	if err != nil {
		return queuesim.Prediction{}, 0, EscAnalyticGate
	}
	errEst := analyticErrEstimate(c, reps)
	if errEst > e.spec.Bound {
		return queuesim.Prediction{}, 0, EscAnalyticBound
	}
	pred := queuesim.Prediction{MeanRT: mean, P95RT: math.NaN(), P99RT: math.NaN()}
	if exp, ok := c.Service.(dist.Exponential); ok && c.Slots == 1 && c.Discipline.Kind == queuesim.DiscFIFO {
		// M/M/1-FIFO: the stationary response time is exponential at
		// rate mu-lambda, so quantiles are closed-form too.
		rate := exp.Rate - c.ArrivalRate
		pred.P95RT = -math.Log(1-0.95) / rate
		pred.P99RT = -math.Log(1-0.99) / rate
	}
	return pred, errEst, 0
}

// Estimate answers one task with the cheapest sufficient tier.
func (e *Estimator) Estimate(t sweep.Task) (queuesim.Prediction, Decision, error) {
	dec := Decision{Bound: e.spec.Bound}
	if t.Params.Tracer != nil || t.Params.Clock != nil {
		dec.Tier, dec.Escalations = TierFull, EscBypass
		pred, err := e.eng.Evaluate(t)
		e.record(TierFull, 0, EscBypass)
		return pred, dec, err
	}
	c := t.Params.Canonical()
	reps := taskReps(t)

	if pred, errEst, esc := e.tryAnalytic(c, reps); esc == 0 {
		dec.Tier, dec.ErrEstimate = TierAnalytic, errEst
		e.record(TierAnalytic, errEst, dec.Escalations)
		return pred, dec, nil
	} else {
		dec.Escalations |= esc
	}

	if e.spec.NoCache {
		dec.Escalations |= EscCacheOff
	} else if pred, ok := e.eng.Lookup(t); ok {
		dec.Tier = TierCache
		e.record(TierCache, 0, dec.Escalations)
		return pred, dec, nil
	} else {
		dec.Escalations |= EscCacheMiss
	}

	if e.spec.NoShort {
		dec.Escalations |= EscShortOff
	} else {
		subs := make([]queuesim.Prediction, e.spec.ShortReps)
		ok := true
		for i := range subs {
			p, err := e.eng.Evaluate(e.shortTask(c, i))
			if err != nil {
				dec.Escalations |= EscShortErr
				ok = false
				break
			}
			subs[i] = p
		}
		if ok {
			if pred, rel, fits := e.shortVerdict(c, subs); fits {
				dec.Tier, dec.ErrEstimate = TierShort, rel
				e.record(TierShort, rel, dec.Escalations)
				return pred, dec, nil
			}
			dec.Escalations |= EscShortCI
		}
	}

	dec.Tier = TierFull
	pred, err := e.eng.Evaluate(t)
	e.record(TierFull, 0, dec.Escalations)
	return pred, dec, err
}

// MeanRT is Estimate reduced to the mean response time — the quantity
// every policy search and online decision scores on.
func (e *Estimator) MeanRT(t sweep.Task) (float64, Decision, error) {
	pred, dec, err := e.Estimate(t)
	return pred.MeanRT, dec, err
}

// EstimateAll answers a batch, with all simulation (short replications
// and full evaluations) sharded across the engine's workers. Results
// land in task order and are bit-identical at any worker count; tier
// choices match per-task Estimate calls made in the same engine state.
func (e *Estimator) EstimateAll(tasks []sweep.Task) ([]queuesim.Prediction, []Decision, error) {
	preds := make([]queuesim.Prediction, len(tasks))
	decs := make([]Decision, len(tasks))
	canon := make([]queuesim.Params, len(tasks))
	pending := make([]int, 0, len(tasks))

	// Pass 1: the lookup-cost tiers, inline.
	for i, t := range tasks {
		decs[i].Bound = e.spec.Bound
		if t.Params.Tracer != nil || t.Params.Clock != nil {
			decs[i].Escalations = EscBypass
			pending = append(pending, i)
			continue
		}
		canon[i] = t.Params.Canonical()
		if pred, errEst, esc := e.tryAnalytic(canon[i], taskReps(t)); esc == 0 {
			decs[i].Tier, decs[i].ErrEstimate = TierAnalytic, errEst
			preds[i] = pred
			e.record(TierAnalytic, errEst, decs[i].Escalations)
			continue
		} else {
			decs[i].Escalations |= esc
		}
		if e.spec.NoCache {
			decs[i].Escalations |= EscCacheOff
		} else if pred, ok := e.eng.Lookup(t); ok {
			decs[i].Tier = TierCache
			preds[i] = pred
			e.record(TierCache, 0, decs[i].Escalations)
			continue
		} else {
			decs[i].Escalations |= EscCacheMiss
		}
		pending = append(pending, i)
	}

	// Pass 2: every pending task's short replications as one sweep
	// batch. A batch error falls back to per-task resolution so one
	// invalid task cannot change its neighbors' tier choices.
	var escalate []int
	var fallbackErr error
	if e.spec.NoShort {
		for _, i := range pending {
			if decs[i].Escalations&EscBypass == 0 {
				decs[i].Escalations |= EscShortOff
			}
		}
		escalate = pending
	} else {
		shortable := make([]int, 0, len(pending))
		var subTasks []sweep.Task
		for _, i := range pending {
			if decs[i].Escalations&EscBypass != 0 {
				escalate = append(escalate, i)
				continue
			}
			shortable = append(shortable, i)
			for r := 0; r < e.spec.ShortReps; r++ {
				subTasks = append(subTasks, e.shortTask(canon[i], r))
			}
		}
		if len(shortable) > 0 {
			subPreds, err := e.eng.EvaluateAll(subTasks)
			for k, i := range shortable {
				if err != nil {
					// Re-resolve serially; Estimate keeps per-task
					// semantics (and records the answer itself).
					var rerr error
					preds[i], decs[i], rerr = e.resolveShortOrFull(tasks[i], canon[i], decs[i])
					if rerr != nil && fallbackErr == nil {
						fallbackErr = rerr
					}
					continue
				}
				subs := subPreds[k*e.spec.ShortReps : (k+1)*e.spec.ShortReps]
				if pred, rel, fits := e.shortVerdict(canon[i], subs); fits {
					decs[i].Tier, decs[i].ErrEstimate = TierShort, rel
					preds[i] = pred
					e.record(TierShort, rel, decs[i].Escalations)
					continue
				}
				decs[i].Escalations |= EscShortCI
				escalate = append(escalate, i)
			}
			if err != nil {
				// The serial fallback answered everything that was
				// shortable; only bypasses remain.
				escalate = escalate[:0]
				for _, i := range pending {
					if decs[i].Escalations&EscBypass != 0 {
						escalate = append(escalate, i)
					}
				}
			}
		}
	}

	// Pass 3: the survivors' full evaluations as one sweep batch. The
	// earliest error wins: a serial-fallback failure from pass 2
	// happened before anything pass 3 ran.
	firstErr := fallbackErr
	if len(escalate) > 0 {
		fullTasks := make([]sweep.Task, len(escalate))
		for k, i := range escalate {
			fullTasks[k] = tasks[i]
		}
		fullPreds, err := e.eng.EvaluateAll(fullTasks)
		if firstErr == nil {
			firstErr = err
		}
		for k, i := range escalate {
			decs[i].Tier = TierFull
			preds[i] = fullPreds[k]
			e.record(TierFull, 0, decs[i].Escalations)
		}
	}
	return preds, decs, firstErr
}

// resolveShortOrFull is EstimateAll's serial fallback for one task when
// the batched short pass failed: short tier then full tier, with the
// escalation bits accumulated so far.
func (e *Estimator) resolveShortOrFull(t sweep.Task, c queuesim.Params, dec Decision) (queuesim.Prediction, Decision, error) {
	subs := make([]queuesim.Prediction, e.spec.ShortReps)
	ok := true
	for i := range subs {
		p, err := e.eng.Evaluate(e.shortTask(c, i))
		if err != nil {
			dec.Escalations |= EscShortErr
			ok = false
			break
		}
		subs[i] = p
	}
	if ok {
		if pred, rel, fits := e.shortVerdict(c, subs); fits {
			dec.Tier, dec.ErrEstimate = TierShort, rel
			e.record(TierShort, rel, dec.Escalations)
			return pred, dec, nil
		}
		dec.Escalations |= EscShortCI
	}
	dec.Tier = TierFull
	pred, err := e.eng.Evaluate(t)
	e.record(TierFull, 0, dec.Escalations)
	return pred, dec, err
}

// MeanRTs is EstimateAll reduced to mean response times — the shape
// policy searches score candidates with.
func (e *Estimator) MeanRTs(tasks []sweep.Task) ([]float64, []Decision, error) {
	preds, decs, err := e.EstimateAll(tasks)
	if err != nil {
		return nil, decs, err
	}
	out := make([]float64, len(preds))
	for i, p := range preds {
		out[i] = p.MeanRT
	}
	return out, decs, nil
}
