package tier

import (
	"math"
	"strings"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sweep"
)

// FuzzParseTierSpec holds the spec grammar to its contract: the parser
// never panics, and any accepted input round-trips — parse -> String ->
// re-parse reproduces the same resolved spec, with String idempotent.
func FuzzParseTierSpec(f *testing.F) {
	f.Add("")
	f.Add("bound=0.1")
	f.Add("bound=0.25,-analytic,cache,short(div=8,reps=4,ci=0.5)")
	f.Add("-analytic,-cache,-short")
	f.Add("short(div=16,reps=2)")
	f.Add("bound=1,short(ci=1)")
	f.Add("bound=0,short(div=0,reps=0,ci=0)")
	f.Add("short(((")
	f.Add("bound=1e-300")
	f.Add(" bound = 0.5 ")
	f.Fuzz(func(t *testing.T, in string) {
		s1, err := ParseTierSpec(in)
		if err != nil {
			return
		}
		if verr := s1.Validate(); verr != nil {
			t.Fatalf("ParseTierSpec(%q) returned invalid spec %+v: %v", in, s1, verr)
		}
		text := s1.String()
		s2, err := ParseTierSpec(text)
		if err != nil {
			t.Fatalf("re-parse of %q (accepted from %q): %v", text, in, err)
		}
		if s1 != s2 {
			t.Fatalf("%q: %+v -> %q -> %+v", in, s1, text, s2)
		}
		if again := s2.String(); again != text {
			t.Fatalf("%q: String not a fixed point: %q then %q", in, text, again)
		}
	})
}

// fuzzService maps a selector byte to a service distribution with mean
// near 1/mu, covering light, deterministic and heavy tails.
func fuzzService(sel uint8, mu float64) dist.Dist {
	switch sel % 4 {
	case 0:
		return dist.NewExponential(mu)
	case 1:
		return dist.Deterministic{Value: 1 / mu}
	case 2:
		return dist.Uniform{Lo: 0.5 / mu, Hi: 1.5 / mu}
	default:
		return dist.LogNormalFromMeanCV(1/mu, 1.5)
	}
}

// FuzzTierEscalation throws randomized queries at the ladder and checks
// the invariants no input may break: the decision is deterministic
// (fresh estimator + fresh engine twice -> bit-identical answer, same
// decision), the advertised error estimate of a serving cheap tier
// respects the bound, the escalation mask is consistent with the tier
// chosen, and tightening the bound never picks a cheaper tier.
func FuzzTierEscalation(f *testing.F) {
	f.Add(uint16(600), uint8(0), uint16(300), false, uint16(200))
	f.Add(uint16(900), uint8(3), uint16(400), true, uint16(80))
	f.Add(uint16(100), uint8(1), uint16(50), false, uint16(1000))
	f.Fuzz(func(t *testing.T, loadMilli uint16, svcSel uint8, queries uint16, sprinting bool, boundMilli uint16) {
		// Clamp to a stable, fast corner of parameter space: utilization
		// in [0.05, 0.95], horizons small enough that the full tier stays
		// cheap under -fuzztime.
		rho := 0.05 + 0.9*float64(loadMilli%1000)/1000
		const mu = 1.0
		q := 50 + int(queries%400)
		bound := 0.01 + 0.99*float64(boundMilli%1000)/1000
		p := queuesim.Params{
			ArrivalRate: rho * mu,
			Service:     fuzzService(svcSel, mu),
			ServiceRate: mu,
			Timeout:     -1,
			NumQueries:  q,
			Seed:        uint64(loadMilli)<<16 | uint64(queries),
		}
		if sprinting {
			p.SprintRate = 2 * mu
			p.Timeout = 0.5 / mu
			p.BudgetSeconds = 5
			p.RefillTime = 20
		}
		task := sweep.Task{Params: p, Reps: 2}

		run := func(bound float64) (queuesim.Prediction, Decision) {
			est, err := New(Spec{Bound: bound}, Options{
				Engine:  sweep.New(sweep.Options{Workers: 2, Metrics: obs.NewRegistry()}),
				Metrics: obs.NewRegistry(),
			})
			if err != nil {
				t.Fatal(err)
			}
			pred, dec, err := est.Estimate(task)
			if err != nil {
				t.Fatalf("Estimate(%+v): %v", p, err)
			}
			return pred, dec
		}

		pred1, dec1 := run(bound)
		pred2, dec2 := run(bound)
		if predBits(pred1) != predBits(pred2) || dec1 != dec2 {
			t.Fatalf("nondeterministic: %+v/%+v vs %+v/%+v", pred1, dec1, pred2, dec2)
		}

		if dec1.Bound != bound {
			t.Fatalf("decision bound %v, want %v", dec1.Bound, bound)
		}
		if dec1.Tier == TierAnalytic || dec1.Tier == TierShort {
			if !(dec1.ErrEstimate <= dec1.Bound) {
				t.Fatalf("%v served with estimate %v over bound %v", dec1.Tier, dec1.ErrEstimate, dec1.Bound)
			}
		}
		if dec1.Tier != TierFull && dec1.Escalations&(EscBypass|EscShortErr) != 0 {
			t.Fatalf("cheap tier %v carries full-only escalations %#x", dec1.Tier, dec1.Escalations)
		}
		if !(pred1.MeanRT > 0) && dec1.Tier != TierFull {
			t.Fatalf("cheap tier %v served non-positive mean %v", dec1.Tier, pred1.MeanRT)
		}
		if math.IsNaN(pred1.MeanRT) {
			t.Fatalf("NaN mean from tier %v", dec1.Tier)
		}
		if s := strings.TrimSpace(dec1.Tier.String()); s == "" || s == "none" {
			t.Fatalf("served by unnamed tier %d", dec1.Tier)
		}

		// Monotonicity at a strictly tighter bound, fresh state again.
		_, tight := run(bound / 4)
		if tight.Tier < dec1.Tier {
			t.Fatalf("bound %v -> %v but %v -> %v: escalation not monotone",
				bound, dec1.Tier, bound/4, tight.Tier)
		}
	})
}
