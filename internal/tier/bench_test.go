package tier

// The serving-throughput benchmark behind BENCH_tier.json: a mixed
// stationary query stream (the shape a sprintd decide loop generates —
// mostly small perturbations of known operating points, occasionally a
// genuinely new configuration) answered with and without the ladder.
// The acceptance bar is a >=5x median decide speedup with a cheap-tier
// (analytic+cache) hit rate >=70%; TestTierSpeedupBudget enforces both,
// env-gated like the other timing gates so CI runs it deliberately.

import (
	"os"
	"sort"
	"testing"
	"time"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sweep"
)

// benchStreamLen is one period of the mixed stream.
const benchStreamLen = 256

// benchStreamTask returns query i of the stream in a given epoch:
//
//	~60%  fresh no-sprint configs with jittered arrival rates —
//	      analytic-eligible (the "stationary, near a known point" bulk);
//	~15%  one of 8 recurring sprint configs — cache hits once warm;
//	~25%  fresh sprint configs — the simulation tiers' tail.
//
// "Fresh" queries are genuinely new every epoch (rate estimates drift
// between decides, so real streams rarely repeat them exactly), while
// the recurring configs are epoch-independent; everything derives
// deterministically from (epoch, i) so runs are reproducible.
func benchStreamTask(epoch, i int) sweep.Task {
	const mu = 10.0
	u := epoch*benchStreamLen + i
	switch {
	case i%16 < 10: // fresh analytic-eligible
		rho := 0.30 + 0.35*float64(u%977)/977
		return sweep.Task{Params: queuesim.Params{
			ArrivalRate: rho * mu,
			Service:     dist.NewExponential(mu),
			ServiceRate: mu,
			Timeout:     -1,
			NumQueries:  4000,
			Seed:        uint64(1000 + u),
		}, Reps: 2}
	case i%16 < 12: // recurring sprint configs
		k := i % 8
		return sweep.Task{Params: queuesim.Params{
			ArrivalRate:   7 + 0.25*float64(k),
			Service:       dist.NewExponential(mu),
			ServiceRate:   mu,
			SprintRate:    18,
			Timeout:       0.1 + 0.01*float64(k),
			BudgetSeconds: 20, RefillTime: 80,
			NumQueries: 2000,
			Seed:       77,
		}, Reps: 2}
	default: // fresh sprint configs
		return sweep.Task{Params: queuesim.Params{
			ArrivalRate:   7.5 + 0.5*float64(u%131)/131,
			Service:       dist.NewExponential(mu),
			ServiceRate:   mu,
			SprintRate:    16 + float64(u%5),
			Timeout:       0.08 + 0.06*float64(u%11)/11,
			BudgetSeconds: 15, RefillTime: 60,
			NumQueries: 2000,
			Seed:       uint64(5000 + u),
		}, Reps: 2}
	}
}

func benchEstimator(b testing.TB, spec Spec) *Estimator {
	est, err := New(spec, Options{
		Engine:  sweep.New(sweep.Options{Workers: 2, Metrics: obs.NewRegistry()}),
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	return est
}

// BenchmarkTierDecide measures the amortized per-query decide cost over
// the mixed stream with the full ladder enabled.
func BenchmarkTierDecide(b *testing.B) {
	est := benchEstimator(b, Spec{})
	// Warm one epoch so the recurring configs are memoized, as they
	// would be in any serving steady state.
	for i := 0; i < benchStreamLen; i++ {
		if _, _, err := est.MeanRT(benchStreamTask(0, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := est.MeanRT(benchStreamTask(1+i/benchStreamLen, i%benchStreamLen)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := est.Stats()
	b.ReportMetric(s.CheapRate(), "cheap-rate")
}

// BenchmarkFullDecide is the same stream with every cheap tier off —
// today's behavior, where each decide is a full engine evaluation
// (the engine's own memoization still applies, as it does in
// production).
func BenchmarkFullDecide(b *testing.B) {
	est := benchEstimator(b, Spec{NoAnalytic: true, NoCache: true, NoShort: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := est.MeanRT(benchStreamTask(1+i/benchStreamLen, i%benchStreamLen)); err != nil {
			b.Fatal(err)
		}
	}
}

// measureStream runs one period and returns per-query latencies plus
// the estimator's final stats.
func measureStream(t *testing.T, spec Spec) ([]time.Duration, Stats) {
	est := benchEstimator(t, spec)
	// Warm epoch 0: the recurring configs get memoized, as in any
	// serving steady state. The measured epoch's fresh queries are new.
	for i := 0; i < benchStreamLen; i++ {
		if _, _, err := est.MeanRT(benchStreamTask(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	before := est.Stats()
	lat := make([]time.Duration, benchStreamLen)
	for i := range lat {
		start := time.Now()
		if _, _, err := est.MeanRT(benchStreamTask(1, i)); err != nil {
			t.Fatal(err)
		}
		lat[i] = time.Since(start)
	}
	return lat, est.Stats().Sub(before)
}

func median(lat []time.Duration) time.Duration {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// TestTierSpeedupBudget is the bench-tier merge gate in test form: over
// the mixed stream, the tiered estimator's median decide latency must
// be at least 5x below always-full, with a cheap-tier hit rate of at
// least 70%. Numbers are recorded in BENCH_tier.json; regenerate with
// `make bench-tier`.
func TestTierSpeedupBudget(t *testing.T) {
	if os.Getenv("MDSPRINT_BENCH_TIER") == "" {
		t.Skip("timing gate: wall-clock margins need an otherwise idle machine; run via make bench-tier (MDSPRINT_BENCH_TIER=1)")
	}
	if testing.Short() {
		t.Skip("simulates the full stream twice")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the timing budget")
	}
	// Both estimators run one warm epoch first, so recurring configs
	// are equally memoized on both engines and the comparison isolates
	// tiering, not cold-start.
	fullLat, _ := measureStream(t, Spec{NoAnalytic: true, NoCache: true, NoShort: true})
	tierLat, stats := measureStream(t, Spec{})

	fullMed, tierMed := median(fullLat), median(tierLat)
	speedup := float64(fullMed) / float64(tierMed)
	t.Logf("median decide: full=%v tiered=%v speedup=%.1fx cheap-rate=%.3f (analytic=%d cache=%d short=%d full=%d of %d)",
		fullMed, tierMed, speedup, stats.CheapRate(),
		stats.Analytic, stats.Cache, stats.Short, stats.Full, stats.Answers)
	if speedup < 5 {
		t.Errorf("median decide speedup %.1fx below the 5x floor", speedup)
	}
	if stats.CheapRate() < 0.70 {
		t.Errorf("cheap-tier hit rate %.3f below the 0.70 floor", stats.CheapRate())
	}
}
