package tier

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec configures a staged estimator: which tiers may answer and how
// aggressively each is allowed to. The zero value means "all tiers on,
// defaults everywhere" so an Estimator can be built without
// configuration; ParseTierSpec/String give it a canonical text form for
// flags and per-tenant configs.
type Spec struct {
	// Bound is the relative error the caller tolerates against full-rep
	// ground truth (default 0.1). Every tier must justify its answer
	// against it: the analytic tier through its error model, the short
	// tier through its confidence interval; the cache and full tiers
	// carry error 0 by construction.
	Bound float64
	// NoAnalytic, NoCache and NoShort disable individual cheap tiers
	// (negative so the zero value enables everything). The full tier
	// cannot be disabled — it is the ground truth the others defer to.
	NoAnalytic bool
	NoCache    bool
	NoShort    bool
	// ShortDiv divides the task's query count for each short
	// replication (default 8); ShortReps is how many short replications
	// the tier runs (default 4, minimum 2 — the CI needs a variance).
	ShortDiv  int
	ShortReps int
	// CIFrac is the fraction of Bound the short tier's 95% relative CI
	// halfwidth must fit inside to serve (default 0.5): the margin
	// covers the ground truth's own sampling noise.
	CIFrac float64
}

// Defaults for the zero Spec.
const (
	DefaultBound     = 0.1
	DefaultShortDiv  = 8
	DefaultShortReps = 4
	DefaultCIFrac    = 0.5
)

// withDefaults resolves zero fields to their defaults.
func (s Spec) withDefaults() Spec {
	//lint:ignore floateq 0 is the struct's literal zero value, the unset sentinel
	if s.Bound == 0 {
		s.Bound = DefaultBound
	}
	if s.ShortDiv == 0 {
		s.ShortDiv = DefaultShortDiv
	}
	if s.ShortReps == 0 {
		s.ShortReps = DefaultShortReps
	}
	//lint:ignore floateq 0 is the struct's literal zero value, the unset sentinel
	if s.CIFrac == 0 {
		s.CIFrac = DefaultCIFrac
	}
	return s
}

// Validate reports whether the resolved spec is usable.
func (s Spec) Validate() error {
	r := s.withDefaults()
	if !(r.Bound > 0 && r.Bound <= 1) {
		return fmt.Errorf("tier: bound %v must be in (0, 1]", r.Bound)
	}
	if r.ShortDiv < 2 {
		return fmt.Errorf("tier: short div %d must be at least 2", r.ShortDiv)
	}
	if r.ShortReps < 2 || r.ShortReps > maxShortReps {
		return fmt.Errorf("tier: short reps %d must be in [2, %d]", r.ShortReps, maxShortReps)
	}
	if !(r.CIFrac > 0 && r.CIFrac <= 1) {
		return fmt.Errorf("tier: ci fraction %v must be in (0, 1]", r.CIFrac)
	}
	return nil
}

// String renders the spec in its canonical grammar, e.g.
//
//	bound=0.1,analytic,cache,short(div=8,reps=4,ci=0.5)
//
// Disabled tiers render as "-analytic", "-cache", "-short" (a disabled
// short tier drops its parameter list). ParseTierSpec(s.String())
// reproduces the resolved spec exactly, and String is idempotent under
// that round trip — the fuzz harness holds it to both.
func (s Spec) String() string {
	r := s.withDefaults()
	var b strings.Builder
	b.WriteString("bound=")
	b.WriteString(formatFloat(r.Bound))
	if r.NoAnalytic {
		b.WriteString(",-analytic")
	} else {
		b.WriteString(",analytic")
	}
	if r.NoCache {
		b.WriteString(",-cache")
	} else {
		b.WriteString(",cache")
	}
	if r.NoShort {
		b.WriteString(",-short")
	} else {
		b.WriteString(",short(div=")
		b.WriteString(strconv.Itoa(r.ShortDiv))
		b.WriteString(",reps=")
		b.WriteString(strconv.Itoa(r.ShortReps))
		b.WriteString(",ci=")
		b.WriteString(formatFloat(r.CIFrac))
		b.WriteString(")")
	}
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseTierSpec parses the grammar String renders. Fields are
// comma-separated (commas inside the short(...) parameter list bind to
// it); each field is one of
//
//	bound=<float>            error bound in (0, 1]
//	analytic | -analytic     enable/disable the analytic tier
//	cache | -cache           enable/disable the cache tier
//	short | -short           enable/disable the short tier
//	short(div=D,reps=R,ci=C) enable the short tier with parameters
//
// Omitted fields keep their defaults; an empty string is the default
// spec. The result is validated and returned fully resolved.
func ParseTierSpec(s string) (Spec, error) {
	spec := Spec{}
	for _, field := range splitTop(s) {
		field = strings.TrimSpace(field)
		switch {
		case field == "":
			continue
		case strings.HasPrefix(field, "bound="):
			v, err := parseFloatField(field, "bound=")
			if err != nil {
				return Spec{}, err
			}
			//lint:ignore floateq an explicitly spelled "0" parses to exactly 0
			if v == 0 {
				// An explicit zero would silently resolve to the default;
				// reject it instead of reinterpreting it.
				return Spec{}, fmt.Errorf("tier: bound must be positive")
			}
			spec.Bound = v
		case field == "analytic":
			spec.NoAnalytic = false
		case field == "-analytic":
			spec.NoAnalytic = true
		case field == "cache":
			spec.NoCache = false
		case field == "-cache":
			spec.NoCache = true
		case field == "short":
			spec.NoShort = false
		case field == "-short":
			spec.NoShort = true
		case strings.HasPrefix(field, "short(") && strings.HasSuffix(field, ")"):
			spec.NoShort = false
			inner := field[len("short(") : len(field)-1]
			for _, kv := range strings.Split(inner, ",") {
				kv = strings.TrimSpace(kv)
				switch {
				case kv == "":
					continue
				case strings.HasPrefix(kv, "div="):
					n, err := parseIntField(kv, "div=")
					if err != nil {
						return Spec{}, err
					}
					if n == 0 {
						return Spec{}, fmt.Errorf("tier: short div must be positive")
					}
					spec.ShortDiv = n
				case strings.HasPrefix(kv, "reps="):
					n, err := parseIntField(kv, "reps=")
					if err != nil {
						return Spec{}, err
					}
					if n == 0 {
						return Spec{}, fmt.Errorf("tier: short reps must be positive")
					}
					spec.ShortReps = n
				case strings.HasPrefix(kv, "ci="):
					v, err := parseFloatField(kv, "ci=")
					if err != nil {
						return Spec{}, err
					}
					//lint:ignore floateq an explicitly spelled "0" parses to exactly 0
					if v == 0 {
						return Spec{}, fmt.Errorf("tier: ci fraction must be positive")
					}
					spec.CIFrac = v
				default:
					return Spec{}, fmt.Errorf("tier: unknown short parameter %q", kv)
				}
			}
		default:
			return Spec{}, fmt.Errorf("tier: unknown spec field %q", field)
		}
	}
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// splitTop splits on commas outside parentheses, so the short tier's
// parameter list stays one field.
func splitTop(s string) []string {
	var fields []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				fields = append(fields, s[start:i])
				start = i + 1
			}
		}
	}
	return append(fields, s[start:])
}

func parseFloatField(field, prefix string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(field, prefix)), 64)
	if err != nil {
		return 0, fmt.Errorf("tier: %s%w", prefix, err)
	}
	return v, nil
}

func parseIntField(field, prefix string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(field, prefix)))
	if err != nil {
		return 0, fmt.Errorf("tier: %s%w", prefix, err)
	}
	return n, nil
}
