package stats

import "math"

// LinearFit holds a one-dimensional least-squares regression y = A*x + B.
// The random decision forest's leaves regress effective sprint rate on
// marginal sprint rate with exactly this model (Figure 5 of the paper).
type LinearFit struct {
	A, B float64
	// N is the number of points the fit was computed from.
	N int
}

// FitLinear computes the least-squares line through (xs[i], ys[i]). With a
// single point, or when all xs coincide, the slope degenerates to zero and
// B becomes the mean of ys. It panics on mismatched or empty input.
func FitLinear(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("stats: FitLinear requires equal-length, non-empty slices")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if math.Abs(denom) < 1e-12*math.Max(1, n*sxx) {
		return LinearFit{A: 0, B: sy / n, N: len(xs)}
	}
	a := (n*sxy - sx*sy) / denom
	b := (sy - a*sx) / n
	return LinearFit{A: a, B: b, N: len(xs)}
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.A*x + f.B }

// Residual returns y - f(x).
func (f LinearFit) Residual(x, y float64) float64 { return y - f.Predict(x) }
