package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"mdsprint/internal/dist"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVarianceBasics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if sd := Stddev(xs); sd != 2 {
		t.Errorf("Stddev = %v, want 2", sd)
	}
	if cv := CoV(xs); !almostEqual(cv, 0.4, 1e-12) {
		t.Errorf("CoV = %v, want 0.4", cv)
	}
}

func TestEmptyInputsReturnNaN(t *testing.T) {
	for name, v := range map[string]float64{
		"Mean":     Mean(nil),
		"Variance": Variance(nil),
		"Median":   Median(nil),
		"Min":      Min(nil),
		"Max":      Max(nil),
		"CoV":      CoV(nil),
		"CDFAt":    CDFAt(nil, 1),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s(empty) = %v, want NaN", name, v)
		}
	}
}

func TestCoVZeroMean(t *testing.T) {
	if cv := CoV([]float64{-1, 1}); !math.IsInf(cv, 1) {
		t.Errorf("CoV zero-mean varying = %v, want +Inf", cv)
	}
	if cv := CoV([]float64{0, 0, 0}); cv != 0 {
		t.Errorf("CoV all-zero = %v, want 0", cv)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {0.25, 17.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestQuantileOutOfRange(t *testing.T) {
	if !math.IsNaN(Quantile([]float64{1}, -0.1)) || !math.IsNaN(Quantile([]float64{1}, 1.1)) {
		t.Fatal("out-of-range q should return NaN")
	}
}

// Property: for any data, Min <= Quantile(q) <= Max and quantiles are
// monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1Raw, q2Raw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = math.Mod(v, 1e6)
		}
		q1 := float64(q1Raw) / 255
		q2 := float64(q2Raw) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		return v1 <= v2+1e-9 && v1 >= Min(xs)-1e-9 && v2 <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsRelError(t *testing.T) {
	cases := []struct{ pred, obs, want float64 }{
		{110, 100, 0.1},
		{90, 100, 0.1},
		{100, 100, 0},
		{0, 0, 0},
		{-50, 100, 1.5},
	}
	for _, c := range cases {
		if got := AbsRelError(c.pred, c.obs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("AbsRelError(%v,%v) = %v, want %v", c.pred, c.obs, got, c.want)
		}
	}
	if !math.IsInf(AbsRelError(1, 0), 1) {
		t.Error("AbsRelError(1,0) should be +Inf")
	}
}

func TestMedianAbsRelError(t *testing.T) {
	pred := []float64{110, 100, 130}
	obs := []float64{100, 100, 100}
	if got := MedianAbsRelError(pred, obs); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("MedianAbsRelError = %v, want 0.1", got)
	}
}

func TestAbsRelErrorsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	AbsRelErrors([]float64{1}, []float64{1, 2})
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.N != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("bad extremes: %+v", s)
	}
	if !almostEqual(s.Median, 500.5, 1e-9) {
		t.Errorf("median %v, want 500.5", s.Median)
	}
	if !almostEqual(s.P99, 990.01, 0.1) {
		t.Errorf("p99 %v, want ~990", s.P99)
	}
	if !almostEqual(s.Mean, 500.5, 1e-9) {
		t.Errorf("mean %v, want 500.5", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.P99) {
		t.Fatalf("empty summary should be NaN-filled: %+v", s)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	wantVals := []float64{1, 2, 3}
	wantFracs := []float64{1.0 / 3, 2.0 / 3, 1}
	for i, p := range pts {
		if p.Value != wantVals[i] || !almostEqual(p.Fraction, wantFracs[i], 1e-12) {
			t.Errorf("point %d = %+v", i, p)
		}
	}
}

func TestCDFAtAndFractionAbove(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDFAt = %v", got)
	}
	if got := FractionAbove(xs, 3); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("FractionAbove = %v", got)
	}
	// CDFAt(v) + FractionAbove(v) == 1 for any v.
	for _, v := range []float64{0, 1, 2.5, 4, 10} {
		if s := CDFAt(xs, v) + FractionAbove(xs, v); !almostEqual(s, 1, 1e-12) {
			t.Errorf("CDFAt+FractionAbove at %v = %v", v, s)
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0.5, 1.5, 2.5, 99}
	counts := Histogram(xs, 0, 3, 3)
	want := []int{2, 1, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("hist = %v, want %v", counts, want)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad bins")
		}
	}()
	Histogram(nil, 0, 1, 0)
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := FitLinear(xs, ys)
	if !almostEqual(f.A, 2, 1e-9) || !almostEqual(f.B, 3, 1e-9) {
		t.Fatalf("fit = %+v, want A=2 B=3", f)
	}
	if got := f.Predict(10); !almostEqual(got, 23, 1e-9) {
		t.Errorf("Predict(10) = %v", got)
	}
	if r := f.Residual(1, 6); !almostEqual(r, 1, 1e-9) {
		t.Errorf("Residual = %v", r)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	f := FitLinear([]float64{2, 2, 2}, []float64{1, 3, 5})
	if f.A != 0 || !almostEqual(f.B, 3, 1e-9) {
		t.Fatalf("degenerate fit = %+v, want A=0 B=3", f)
	}
	single := FitLinear([]float64{4}, []float64{9})
	if single.A != 0 || single.B != 9 {
		t.Fatalf("single-point fit = %+v", single)
	}
}

func TestFitLinearNoisyRecovery(t *testing.T) {
	r := dist.NewRNG(77)
	n := 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 10
		ys[i] = 1.5*xs[i] + 4 + 0.1*r.NormFloat64()
	}
	f := FitLinear(xs, ys)
	if !almostEqual(f.A, 1.5, 0.01) || !almostEqual(f.B, 4, 0.05) {
		t.Fatalf("noisy fit = %+v, want ~A=1.5 B=4", f)
	}
}

// Property: the least-squares residuals sum to ~zero.
func TestFitLinearResidualProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		r := dist.NewRNG(seed)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
			ys[i] = r.Float64() * 100
		}
		fit := FitLinear(xs, ys)
		sum := 0.0
		for i := range xs {
			sum += fit.Residual(xs[i], ys[i])
		}
		return math.Abs(sum) < 1e-6*float64(n)*100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFSorted(t *testing.T) {
	pts := CDF([]float64{5, 3, 8, 1, 9, 2})
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value }) {
		t.Fatal("CDF points not sorted")
	}
}
