// Package stats provides the summary statistics used to evaluate the
// sprinting models: means, quantiles, coefficients of variation, empirical
// CDFs, and the absolute-relative-error metrics reported in the paper's
// evaluation (Section 3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ApproxEqual reports whether a and b agree to within eps, combining an
// absolute and a relative test: |a-b| <= eps or |a-b| <= eps*max(|a|,|b|).
// It is the project's sanctioned replacement for float equality (the
// floateq analyzer forbids bare ==/!= on floats). NaN equals nothing;
// equal infinities are equal. A non-positive eps degenerates to exact
// comparison.
func ApproxEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	// Allowlisted in the floateq config: the epsilon helper itself may
	// short-circuit on exact matches and equal infinities.
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	return diff <= eps*math.Max(math.Abs(a), math.Abs(b))
}

// ApproxZero reports whether |x| <= eps. NaN is never approximately zero.
func ApproxZero(x, eps float64) bool {
	return math.Abs(x) <= eps
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN if len(xs) == 0.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation (stddev / mean). It returns NaN
// for empty input and +Inf when the mean is zero but the data varies.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	sd := Stddev(xs)
	if math.IsNaN(m) {
		return math.NaN()
	}
	//lint:ignore floateq exact-zero guards against division by zero; approximate zeros must still divide
	if m == 0 {
		//lint:ignore floateq see above: only a bitwise-zero spread makes CoV 0 here
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / math.Abs(m)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs and returns
// NaN for empty input or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile over data already sorted ascending.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Min returns the smallest element of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// AbsRelError returns |predicted - observed| / observed, the paper's
// prediction-error metric. A zero observation yields +Inf unless the
// prediction is also zero.
func AbsRelError(predicted, observed float64) float64 {
	//lint:ignore floateq exact-zero guard against division by zero, per the function contract
	if observed == 0 {
		//lint:ignore floateq exact match of a zero observation is the one error-free case
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-observed) / math.Abs(observed)
}

// AbsRelErrors maps AbsRelError over paired slices. It panics if the slices
// differ in length.
func AbsRelErrors(predicted, observed []float64) []float64 {
	if len(predicted) != len(observed) {
		panic(fmt.Sprintf("stats: %d predictions vs %d observations", len(predicted), len(observed)))
	}
	errs := make([]float64, len(predicted))
	for i := range predicted {
		errs[i] = AbsRelError(predicted[i], observed[i])
	}
	return errs
}

// MedianAbsRelError is the headline accuracy number in Figures 7-10: the
// median of per-test absolute relative errors.
func MedianAbsRelError(predicted, observed []float64) float64 {
	return Median(AbsRelErrors(predicted, observed))
}

// Summary bundles the usual descriptive statistics of one sample.
type Summary struct {
	N                   int
	Mean, Std, CoV      float64
	Min, Median, Max    float64
	P90, P95, P99, P999 float64
}

// Summarize computes a Summary of xs in a single sort.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, Std: nan, CoV: nan, Min: nan, Median: nan, Max: nan, P90: nan, P95: nan, P99: nan, P999: nan}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    Stddev(xs),
		CoV:    CoV(xs),
		Min:    sorted[0],
		Median: quantileSorted(sorted, 0.5),
		Max:    sorted[len(sorted)-1],
		P90:    quantileSorted(sorted, 0.90),
		P95:    quantileSorted(sorted, 0.95),
		P99:    quantileSorted(sorted, 0.99),
		P999:   quantileSorted(sorted, 0.999),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P99, s.Max)
}

// CDFPoint is one step of an empirical cumulative distribution function.
type CDFPoint struct {
	Value    float64 // sample value
	Fraction float64 // fraction of samples <= Value
}

// CDF returns the empirical CDF of xs as sorted points, one per sample.
func CDF(xs []float64) []CDFPoint {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pts := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		pts[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return pts
}

// CDFAt returns the fraction of samples in xs that are <= v.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	count := 0
	for _, x := range xs {
		if x <= v {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// FractionAbove returns the fraction of samples strictly greater than v.
// The paper's tail-latency comparison counts executions above fixed
// thresholds (e.g. >335 s for the 99th percentile study in Section 4.4).
func FractionAbove(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	count := 0
	for _, x := range xs {
		if x > v {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]. Samples
// outside the range clamp to the first or last bin.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		panic("stats: Histogram requires nbins>0 and hi>lo")
	}
	counts := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
