package queuesim

// Property tests for the discipline layer: the explicit-FIFO spelling is
// bit-identical to the retained reference engine, and every discipline —
// under randomly drawn dist specs — preserves work conservation (same
// single-server busy periods, so the same makespan) and Little's law as
// an exact sample-path identity.

import (
	"math"
	"testing"
	"testing/quick"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
)

// TestDifferentialExplicitFIFODiscipline re-runs every differential
// config with the discipline machinery explicitly engaged (spelled-out
// FIFO, explicit single server): results and tracer event sequences must
// stay bit-identical to the reference engine, proving the pluggable
// ready-queue layer is free for the paper's FIFO model.
func TestDifferentialExplicitFIFODiscipline(t *testing.T) {
	for _, cfg := range diffConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for _, seed := range diffSeeds {
				p := cfg.p
				p.Seed = seed

				pr := p
				refTracer, refEvents := captureTracer()
				pr.Tracer = refTracer
				want, err := runReference(pr)
				if err != nil {
					t.Fatalf("seed %d: reference: %v", seed, err)
				}

				pp := p
				pp.Discipline = MustParseDiscipline("FIFO")
				pp.Servers = 1
				gotTracer, gotEvents := captureTracer()
				pp.Tracer = gotTracer
				got, err := Run(pp)
				if err != nil {
					t.Fatalf("seed %d: explicit fifo: %v", seed, err)
				}

				requireResultsIdentical(t, got, want)
				requireEventsIdentical(t, *gotEvents, *refEvents)
			}
		})
	}
}

// propArrivalSpecs and propServiceSpecs are the dist-spec pools the
// randomized properties draw from.
var propArrivalSpecs = []string{
	"exp(8)", "uniform(0.05,0.2)", "pareto(0.05,1.8)", "erlang(2,10)",
}

var propServiceSpecs = []string{
	"exp(10)", "lognormal(0.1,0.6)", "tpareto(0.02,1.5,5)", "uniform(0.02,0.2)", "det(0.1)",
}

var propDisciplines = []Discipline{
	{Kind: DiscFIFO},
	{Kind: DiscLIFO},
	{Kind: DiscSRPT},
	{Kind: DiscSERPT, PredictCV: 0.5},
	{Kind: DiscPS},
}

// TestDisciplineWorkConservationAndLittle quick.Checks two path-exact
// properties over random (arrival, service, seed) draws, for every
// discipline on a single-slot server:
//
//   - Work conservation: no discipline idles the server while work
//     remains, so the busy periods — and hence the makespan (last
//     departure time) — are identical across disciplines given the same
//     arrival and service draws. (SERPT's prediction noise comes from a
//     separate RNG stream precisely so this comparison is meaningful.)
//   - Little's law: with the horizon starting and ending empty, the time
//     integral of N(t) equals the sum of per-query sojourns exactly (to
//     float round-off), discipline by discipline.
func TestDisciplineWorkConservationAndLittle(t *testing.T) {
	prop := func(seed uint64, arrPick, svcPick uint8) bool {
		arr := dist.MustParseDist(propArrivalSpecs[int(arrPick)%len(propArrivalSpecs)])
		svc := dist.MustParseDist(propServiceSpecs[int(svcPick)%len(propServiceSpecs)])
		base := Params{
			ArrivalRate:   8,
			Arrival:       arr,
			Service:       svc,
			ServiceRate:   10,
			Timeout:       -1,
			BudgetSeconds: 0,
			NumQueries:    400,
			Warmup:        0,
			Seed:          seed,
		}
		var fifoMakespan float64
		ok := true
		for _, d := range propDisciplines {
			p := base
			p.Discipline = d
			tr := obs.NewRingTracer(8 * p.NumQueries)
			p.Tracer = tr
			res, err := Run(p)
			if err != nil {
				t.Errorf("%v: %v", d, err)
				return false
			}

			// Makespan equality across disciplines (float round-off
			// differs because summation order does).
			if d.Kind == DiscFIFO {
				fifoMakespan = res.Duration
			} else if rel := math.Abs(res.Duration-fifoMakespan) / fifoMakespan; rel > 1e-9 {
				t.Errorf("seed %d arr=%s svc=%s: %v makespan %v differs from FIFO's %v (rel %v)",
					seed, arr, svc, d, res.Duration, fifoMakespan, rel)
				ok = false
			}

			// Little's law as an exact identity on the traced path.
			integral, horizon := integrateInSystem(t, tr.Events())
			var sumSojourn float64
			for _, e := range tr.Events() {
				if e.Type == obs.EvDeparture {
					sumSojourn += e.Value
				}
			}
			if horizon <= 0 {
				t.Errorf("%v: empty horizon", d)
				return false
			}
			if math.Abs(integral-sumSojourn) > 1e-7*math.Max(1, sumSojourn) {
				t.Errorf("seed %d arr=%s svc=%s: %v integral N dt %v != sum sojourns %v",
					seed, arr, svc, d, integral, sumSojourn)
				ok = false
			}

			// And the traced sojourns must be the reported RTs.
			if len(res.RTs) != p.NumQueries {
				t.Errorf("%v: %d RTs, want %d", d, len(res.RTs), p.NumQueries)
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestDisciplineInvariantsUnderSprinting extends the invariant net to
// sprint-enabled runs for the disciplines that support sprinting: every
// reported RT is positive, sprint seconds never exceed supply, and the
// preemptive disciplines keep their counters consistent.
func TestDisciplineInvariantsUnderSprinting(t *testing.T) {
	prop := func(seed uint64, svcPick uint8, timeoutBump float64) bool {
		svc := dist.MustParseDist(propServiceSpecs[int(svcPick)%len(propServiceSpecs)])
		timeout := math.Mod(math.Abs(timeoutBump), 0.3)
		ok := true
		for _, d := range propDisciplines {
			if d.Kind == DiscPS {
				continue // PS rejects sprinting by design
			}
			p := Params{
				ArrivalRate:   9,
				Service:       svc,
				ServiceRate:   10,
				SprintRate:    18,
				Timeout:       timeout,
				BudgetSeconds: 2,
				RefillTime:    40,
				NumQueries:    400,
				Discipline:    d,
				Seed:          seed,
			}
			res, err := Run(p)
			if err != nil {
				t.Errorf("%v: %v", d, err)
				return false
			}
			for i, rt := range res.RTs {
				if !(rt > 0) {
					t.Errorf("%v: RTs[%d] = %v, want > 0", d, i, rt)
					ok = false
					break
				}
			}
			if supply := res.BudgetSupply(p); res.SprintSeconds > supply*(1+1e-9) {
				t.Errorf("%v: sprint seconds %v exceed supply %v", d, res.SprintSeconds, supply)
				ok = false
			}
			preemptive := d.Kind == DiscSRPT || d.Kind == DiscSERPT
			if !preemptive && res.Preemptions != 0 {
				t.Errorf("%v: %d preemptions from a non-preemptive discipline", d, res.Preemptions)
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
