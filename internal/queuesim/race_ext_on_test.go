//go:build race

package queuesim_test

// raceEnabled mirrors the in-package gate for the external test package;
// see race_on_test.go.
const raceEnabled = true
