package queuesim

// Allocation-budget tests: the pooled hot path must simulate queries with
// zero steady-state heap allocations when tracing is off. These are
// enforced budgets, not benchmarks — a regression fails the suite.

import (
	"testing"

	"mdsprint/internal/dist"
)

// allocParams exercises the full hot path: arrivals, timeouts, engages,
// budget exhaustion and refill, reschedules, departures.
func allocParams() Params {
	return Params{
		ArrivalRate:   9,
		ArrivalKind:   dist.KindPareto,
		Service:       dist.NewExponential(10),
		ServiceRate:   10,
		SprintRate:    20,
		Timeout:       0.05,
		BudgetSeconds: 2,
		RefillTime:    40,
		NumQueries:    800,
		Seed:          3,
	}
}

// TestRunnerZeroAllocsPerQuery pins the tentpole invariant: a warmed
// Runner replaying RunInto with a reused Result performs zero heap
// allocations for the entire run — event scheduling, query pooling, FIFO
// queueing, RNG reseeding, accountant resets and metrics flush included.
func TestRunnerZeroAllocsPerQuery(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	r := NewRunner()
	p := allocParams()
	var res Result
	// Warm every pool to its steady-state capacity.
	for i := 0; i < 3; i++ {
		if err := r.RunInto(p, &res); err != nil {
			t.Fatal(err)
		}
	}
	if res.Engages == 0 || res.Exhaustions == 0 {
		t.Fatalf("warmup run must exercise sprints (engages=%d exhaustions=%d)",
			res.Engages, res.Exhaustions)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := r.RunInto(p, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state RunInto allocated %.1f objects per run (%d queries), want 0",
			allocs, p.NumQueries)
	}
}

// TestRunnerZeroAllocsAcrossSeeds varies the seed per run (the RunReps
// pattern): reseeding must not reintroduce allocations.
func TestRunnerZeroAllocsAcrossSeeds(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	r := NewRunner()
	p := allocParams()
	var res Result
	for i := 0; i < 3; i++ {
		p.Seed = repSeed(3, i)
		if err := r.RunInto(p, &res); err != nil {
			t.Fatal(err)
		}
	}
	seed := 0
	allocs := testing.AllocsPerRun(10, func() {
		p.Seed = repSeed(1000, seed%3)
		seed++
		if err := r.RunInto(p, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("seed-varying RunInto allocated %.1f objects per run, want 0", allocs)
	}
}

// TestRunRepsIntoZeroAllocs pins the replication loop at zero
// steady-state allocations for both the FIFO ring and the heap-ordered
// SRPT path: with the caller holding the Result slice, the only
// allocations RunReps ever made (the slice header plus per-rep output
// vectors) disappear, closing the 17-allocs-per-call gap the bench
// baseline used to carry.
func TestRunRepsIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	for _, disc := range []Discipline{{Kind: DiscFIFO}, {Kind: DiscSRPT}} {
		t.Run(string(disc.canonical().Kind), func(t *testing.T) {
			p := allocParams()
			p.Discipline = disc
			out := make([]Result, 4)
			for i := 0; i < 3; i++ {
				if err := RunRepsInto(p, out); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := RunRepsInto(p, out); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state RunRepsInto(%s) allocated %.1f objects per call, want 0",
					disc, allocs)
			}
		})
	}
}

// TestFIFOBoundedLiveQueries is the regression test for the FIFO
// backing-array retention bug: the old head-shifting queue
// (s.queue = s.queue[1:]) kept every departed query reachable through
// the slice's backing array for the whole run. The pooled ring recycles
// slots, so the live high-water mark must track the actual queue depth —
// a small fraction of the total at moderate load — not the run length.
func TestFIFOBoundedLiveQueries(t *testing.T) {
	p := Params{
		ArrivalRate: 7, // rho = 0.7
		Service:     dist.NewExponential(10),
		ServiceRate: 10,
		Timeout:     -1,
		NumQueries:  20000,
		Seed:        17,
	}
	res := MustRun(p)
	if res.MaxLive <= 0 {
		t.Fatalf("MaxLive = %d, want positive", res.MaxLive)
	}
	if res.MaxLive >= p.NumQueries/10 {
		t.Fatalf("MaxLive = %d for %d queries at rho=0.7: live set grows with run length, pool is retaining departed queries",
			res.MaxLive, p.NumQueries)
	}
}
