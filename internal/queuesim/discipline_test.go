package queuesim

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/stats"
)

// scriptDist replays a fixed sequence of values, cycling. It lets the
// scenario tests below pin exact arrival and service times so a
// discipline's schedule can be verified by hand.
type scriptDist struct {
	vals []float64
	i    *int
}

func newScript(vals ...float64) scriptDist { i := 0; return scriptDist{vals: vals, i: &i} }

func (d scriptDist) Sample(*dist.RNG) float64 {
	v := d.vals[*d.i%len(d.vals)]
	*d.i++
	return v
}

func (d scriptDist) Mean() float64 {
	s := 0.0
	for _, v := range d.vals {
		s += v
	}
	return s / float64(len(d.vals))
}

func (d scriptDist) String() string { return "script" }

// scriptParams builds a no-sprint run with scripted interarrivals and
// service times.
func scriptParams(inter, service []float64, n int) Params {
	return Params{
		ArrivalRate:   1,
		Arrival:       newScript(inter...),
		Service:       newScript(service...),
		ServiceRate:   1,
		Timeout:       -1,
		BudgetSeconds: 0,
		NumQueries:    n,
	}
}

func TestParseDiscipline(t *testing.T) {
	valid := []struct {
		spec string
		want Discipline
	}{
		{"fifo", Discipline{Kind: DiscFIFO}},
		{"FIFO", Discipline{Kind: DiscFIFO}},
		{" lifo ", Discipline{Kind: DiscLIFO}},
		{"srpt", Discipline{Kind: DiscSRPT}},
		{"ps", Discipline{Kind: DiscPS}},
		{"serpt", Discipline{Kind: DiscSERPT}},
		{"serpt(0.3)", Discipline{Kind: DiscSERPT, PredictCV: 0.3}},
		{"SERPT( 2 )", Discipline{Kind: DiscSERPT, PredictCV: 2}},
	}
	for _, tc := range valid {
		got, err := ParseDiscipline(tc.spec)
		if err != nil {
			t.Errorf("ParseDiscipline(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseDiscipline(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		// The String form must round-trip to the same discipline.
		back, err := ParseDiscipline(got.String())
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q -> %+v (%v)", tc.spec, got.String(), back, err)
		}
	}
	invalid := []string{
		"", "sjf", "fifo(1)", "lifo(2)", "ps(0.5)", "serpt(", "serpt)",
		"serpt(x)", "serpt(-1)", "serpt(NaN)", "serpt(1e99)",
	}
	for _, spec := range invalid {
		if d, err := ParseDiscipline(spec); err == nil {
			t.Errorf("ParseDiscipline(%q) = %+v, want error", spec, d)
		}
	}
}

func TestDisciplineValidate(t *testing.T) {
	base := mmParams(0.5, 1, 1, 100, 1)
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"unknown kind", func(p *Params) { p.Discipline.Kind = "sjf" }},
		{"cv on fifo", func(p *Params) { p.Discipline = Discipline{Kind: DiscFIFO, PredictCV: 0.5} }},
		{"negative cv", func(p *Params) { p.Discipline = Discipline{Kind: DiscSERPT, PredictCV: -1} }},
		{"nan cv", func(p *Params) { p.Discipline = Discipline{Kind: DiscSERPT, PredictCV: math.NaN()} }},
		{"ps with sprinting", func(p *Params) {
			p.Discipline.Kind = DiscPS
			p.Timeout = 1
			p.BudgetSeconds = 10
		}},
		{"negative servers", func(p *Params) { p.Servers = -1 }},
		{"servers without dispatch", func(p *Params) { p.Servers = 2 }},
	}
	for _, tc := range cases {
		p := base
		tc.mut(&p)
		if _, err := Run(p); err == nil {
			t.Errorf("%s: Run accepted invalid params", tc.name)
		}
	}
	// PS without sprinting is fine.
	p := base
	p.Discipline.Kind = DiscPS
	if _, err := Run(p); err != nil {
		t.Errorf("ps without sprinting: %v", err)
	}
}

// TestSRPTPreemptsLongJob pins the canonical SRPT schedule: a long job in
// service is preempted by a short arrival and resumes where it left off.
//
//	t=1: job0 arrives (service 10), starts
//	t=2: job1 arrives (service 3) -> preempts job0 (remaining 9)
//	t=5: job1 departs (RT 3); job0 resumes with 9 remaining
//	t=14: job0 departs (RT 13)
//
// RTs are recorded in departure order: job1 first.
func TestSRPTPreemptsLongJob(t *testing.T) {
	p := scriptParams([]float64{1, 1, 1000}, []float64{10, 3}, 2)
	p.Discipline = Discipline{Kind: DiscSRPT}
	tr := obs.NewRingTracer(64)
	p.Tracer = tr
	res := MustRun(p)
	wantRTs := []float64{3, 13}
	for i, want := range wantRTs {
		if !stats.ApproxEqual(res.RTs[i], want, 1e-12) {
			t.Errorf("RTs[%d] = %v, want %v", i, res.RTs[i], want)
		}
	}
	if res.Preemptions != 1 {
		t.Errorf("Preemptions = %d, want 1", res.Preemptions)
	}
	// The trace must show the preempt/resume pair with remaining work 9.
	var sawPreempt, sawResume bool
	for _, e := range tr.Events() {
		switch e.Type {
		case obs.EvPreempt:
			sawPreempt = true
			if e.Query != 0 || !stats.ApproxEqual(e.Value, 9, 1e-12) {
				t.Errorf("preempt event %+v, want query 0 remaining 9", e)
			}
		case obs.EvResume:
			sawResume = true
			if e.Query != 0 || !stats.ApproxEqual(e.Time, 5, 1e-12) {
				t.Errorf("resume event %+v, want query 0 at t=5", e)
			}
		}
	}
	if !sawPreempt || !sawResume {
		t.Errorf("trace missing preempt (%v) or resume (%v)", sawPreempt, sawResume)
	}
	// FIFO on the same script serves in arrival order: RTs 10 and 12.
	pf := scriptParams([]float64{1, 1, 1000}, []float64{10, 3}, 2)
	rf := MustRun(pf)
	if !stats.ApproxEqual(rf.RTs[0], 10, 1e-12) || !stats.ApproxEqual(rf.RTs[1], 12, 1e-12) {
		t.Errorf("FIFO RTs = %v, want [10 12]", rf.RTs)
	}
	if rf.Preemptions != 0 {
		t.Errorf("FIFO preempted %d times", rf.Preemptions)
	}
}

// TestSRPTTieDoesNotPreempt: an arrival equal to the running job's
// remaining work must not displace it.
func TestSRPTTieDoesNotPreempt(t *testing.T) {
	// t=1: job0 (service 4) starts. t=2: job1 (service 3) arrives with
	// key 3 == job0's remaining 3 -> no preemption.
	p := scriptParams([]float64{1, 1, 1000}, []float64{4, 3}, 2)
	p.Discipline = Discipline{Kind: DiscSRPT}
	res := MustRun(p)
	if res.Preemptions != 0 {
		t.Fatalf("Preemptions = %d, want 0 on tie", res.Preemptions)
	}
	if !stats.ApproxEqual(res.RTs[0], 4, 1e-12) || !stats.ApproxEqual(res.RTs[1], 6, 1e-12) {
		t.Errorf("RTs = %v, want [4 6]", res.RTs)
	}
}

// TestLIFOOrder pins the non-preemptive last-in-first-out schedule.
func TestLIFOOrder(t *testing.T) {
	// Arrivals t=1,2,3 with services 10,5,5 on one slot. Job0 runs to
	// t=11; LIFO then serves job2 (most recent, RT 13) before job1
	// (RT 19). Departure order: job0, job2, job1.
	p := scriptParams([]float64{1, 1, 1, 1000}, []float64{10, 5, 5}, 3)
	p.Discipline = Discipline{Kind: DiscLIFO}
	res := MustRun(p)
	want := []float64{10, 13, 19}
	for i, w := range want {
		if !stats.ApproxEqual(res.RTs[i], w, 1e-12) {
			t.Errorf("LIFO RTs[%d] = %v, want %v", i, res.RTs[i], w)
		}
	}
	if res.Preemptions != 0 {
		t.Errorf("LIFO preempted %d times", res.Preemptions)
	}
}

// TestPSEgalitarianSharing pins the processor-sharing schedule: two jobs
// share the slot equally, both finishing later than either would alone.
func TestPSEgalitarianSharing(t *testing.T) {
	// t=1: job0 (service 4) alone at rate 1. t=2: job1 (service 4)
	// joins; both progress at 1/2. Job0 (3 remaining) departs at t=8;
	// job1 (1 remaining, rate back to 1) departs at t=9. RTs: 7 and 7.
	p := scriptParams([]float64{1, 1, 1000}, []float64{4, 4}, 2)
	p.Discipline = Discipline{Kind: DiscPS}
	res := MustRun(p)
	if !stats.ApproxEqual(res.RTs[0], 7, 1e-9) || !stats.ApproxEqual(res.RTs[1], 7, 1e-9) {
		t.Errorf("PS RTs = %v, want [7 7]", res.RTs)
	}
	for i, qt := range res.QueueingTimes {
		if qt != 0 {
			t.Errorf("PS QueueingTimes[%d] = %v, want 0 (PS never queues)", i, qt)
		}
	}
}

// TestSERPTZeroCVMatchesSRPT: with perfect predictions SERPT is SRPT,
// bit for bit.
func TestSERPTZeroCVMatchesSRPT(t *testing.T) {
	p := mmParams(0.7, 1, 1, 3000, 97)
	p.Discipline = Discipline{Kind: DiscSRPT}
	a := MustRun(p)
	p.Discipline = Discipline{Kind: DiscSERPT}
	b := MustRun(p)
	requireFloatsBitIdentical(t, "RTs", a.RTs, b.RTs)
	requireFloatsBitIdentical(t, "QueueingTimes", a.QueueingTimes, b.QueueingTimes)
	if a.Preemptions != b.Preemptions {
		t.Errorf("Preemptions: srpt %d vs serpt(0) %d", a.Preemptions, b.Preemptions)
	}
}

// TestSERPTNoiseChangesSchedule: noisy predictions must change the
// schedule (otherwise the noise stream is dead code) while leaving the
// arrival/service draws untouched — the departure-time *set* stays
// work-conserving, checked elsewhere.
func TestSERPTNoiseChangesSchedule(t *testing.T) {
	p := mmParams(0.8, 1, 1, 3000, 97)
	p.Discipline = Discipline{Kind: DiscSRPT}
	a := MustRun(p)
	p.Discipline = Discipline{Kind: DiscSERPT, PredictCV: 1.5}
	b := MustRun(p)
	same := len(a.RTs) == len(b.RTs)
	if same {
		for i := range a.RTs {
			if math.Float64bits(a.RTs[i]) != math.Float64bits(b.RTs[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("serpt(1.5) produced the identical schedule to srpt")
	}
}

// TestSRPTBeatsFIFOOnMeanRT: SRPT minimizes mean response time among
// all disciplines, so on a common random workload its simulated mean
// must not exceed FIFO's.
func TestSRPTBeatsFIFOOnMeanRT(t *testing.T) {
	for _, seed := range []uint64{3, 17, 88} {
		p := mmParams(0.8, 1, 1, 8000, seed)
		fifo := MustRun(p)
		p.Discipline = Discipline{Kind: DiscSRPT}
		srpt := MustRun(p)
		if srpt.MeanRT() > fifo.MeanRT() {
			t.Errorf("seed %d: SRPT mean RT %.4f > FIFO %.4f", seed, srpt.MeanRT(), fifo.MeanRT())
		}
		if srpt.Preemptions == 0 {
			t.Errorf("seed %d: SRPT run never preempted (vacuous)", seed)
		}
	}
}

// TestRoundRobinDispatchOrder pins the multi-queue fan-out: round-robin
// alternates servers regardless of load, and the dispatch events record
// the chosen server.
func TestRoundRobinDispatchOrder(t *testing.T) {
	p := scriptParams([]float64{1, 1, 1, 1, 1000}, []float64{3, 3, 3, 3}, 4)
	p.Servers = 2
	p.Dispatch = rrDispatcher{}
	tr := obs.NewRingTracer(64)
	p.Tracer = tr
	res := MustRun(p)
	// Servers 0 and 1 each serve two jobs FIFO: arrivals 1,2,3,4 ->
	// job0 (s0) 1->4, job1 (s1) 2->5, job2 (s0) queued to 4->7 (RT 4),
	// job3 (s1) queued to 5->8 (RT 4).
	want := []float64{3, 3, 4, 4}
	for i, w := range want {
		if !stats.ApproxEqual(res.RTs[i], w, 1e-12) {
			t.Errorf("RTs[%d] = %v, want %v", i, res.RTs[i], w)
		}
	}
	var servers []int
	for _, e := range tr.Events() {
		if e.Type == obs.EvDispatch {
			servers = append(servers, int(e.Value))
		}
	}
	wantServers := []int{0, 1, 0, 1}
	if len(servers) != len(wantServers) {
		t.Fatalf("dispatch events %v, want %v", servers, wantServers)
	}
	for i := range servers {
		if servers[i] != wantServers[i] {
			t.Fatalf("dispatch events %v, want %v", servers, wantServers)
		}
	}
}

// rrDispatcher is a local round-robin used to avoid importing the
// dispatch package (which depends on queuesim) from its own dependency's
// tests.
type rrDispatcher struct{}

func (rrDispatcher) Canon() string { return "rr" }
func (rrDispatcher) Pick(v ServerView, st *DispatchState) int {
	s := st.Cursor % v.NumServers()
	st.Cursor++
	return s
}

// jsqDispatcher is a local join-shortest-queue for the same reason.
type jsqDispatcher struct{}

func (jsqDispatcher) Canon() string { return "jsq" }
func (jsqDispatcher) Pick(v ServerView, _ *DispatchState) int {
	best, bestLen := 0, v.QueueLen(0)
	for s := 1; s < v.NumServers(); s++ {
		if l := v.QueueLen(s); l < bestLen {
			best, bestLen = s, l
		}
	}
	return best
}

// TestJSQAvoidsBusyServer: with one server pinned by a long job, JSQ
// must route later arrivals to the idle one.
func TestJSQAvoidsBusyServer(t *testing.T) {
	p := scriptParams([]float64{1, 1, 1, 1000}, []float64{100, 2, 2}, 3)
	p.Servers = 2
	p.Dispatch = jsqDispatcher{}
	tr := obs.NewRingTracer(64)
	p.Tracer = tr
	res := MustRun(p)
	var servers []int
	for _, e := range tr.Events() {
		if e.Type == obs.EvDispatch {
			servers = append(servers, int(e.Value))
		}
	}
	// Job0 -> server 0 (tie, lowest index). Job1 -> server 1 (0 busy).
	// Job2 at t=3: server 0 has 1 resident, server 1 has 1 -> tie,
	// lowest index 0... but server 0's job runs 100s, so JSQ's
	// length-only view picks 0 and job2 waits behind it? No: both have
	// exactly one resident, JSQ ties to 0, and job2 queues 97s. That IS
	// join-shortest-queue's known blindness; pin it.
	wantServers := []int{0, 1, 0}
	for i := range wantServers {
		if i >= len(servers) || servers[i] != wantServers[i] {
			t.Fatalf("dispatch events %v, want %v", servers, wantServers)
		}
	}
	// First departure is job1, served immediately on the idle server.
	if !stats.ApproxEqual(res.RTs[0], 2, 1e-12) {
		t.Errorf("RTs[0] = %v, want 2 (idle server)", res.RTs[0])
	}
}

// TestMultiQueueSharedBudget: two servers sprint against one accountant —
// total sprint seconds must respect the shared budget, and both servers
// must engage.
func TestMultiQueueSharedBudget(t *testing.T) {
	// allocParams' tight refilling budget, doubled in arrival rate and
	// fanned over two servers: the shared accountant must still bound
	// consumption by supply and still hit exhaustion episodes.
	p := allocParams()
	p.ArrivalRate *= 2
	p.Servers = 2
	p.Dispatch = rrDispatcher{}
	p.NumQueries = 4000
	res := MustRun(p)
	if res.Engages == 0 {
		t.Fatal("no sprints engaged")
	}
	if res.Exhaustions == 0 {
		t.Fatal("tight shared budget never exhausted (vacuous)")
	}
	supply := res.BudgetSupply(p)
	if res.SprintSeconds > supply*(1+1e-9) {
		t.Errorf("consumed %v sprint seconds from a %v supply", res.SprintSeconds, supply)
	}
}

// TestDisciplineRunnerReuse drives one runner through every discipline
// back to back and then re-runs each config on a fresh runner: pooled
// state must never leak a discipline's ordering into the next run.
func TestDisciplineRunnerReuse(t *testing.T) {
	discs := []Discipline{
		{Kind: DiscFIFO}, {Kind: DiscSRPT}, {Kind: DiscPS},
		{Kind: DiscLIFO}, {Kind: DiscSERPT, PredictCV: 0.5}, {Kind: DiscFIFO},
	}
	shared := NewRunner()
	for _, d := range discs {
		p := mmParams(0.7, 1, 1, 2000, 123)
		p.Discipline = d
		var reused, fresh Result
		if err := shared.RunInto(p, &reused); err != nil {
			t.Fatalf("%v on shared runner: %v", d, err)
		}
		if err := NewRunner().RunInto(p, &fresh); err != nil {
			t.Fatalf("%v on fresh runner: %v", d, err)
		}
		requireFloatsBitIdentical(t, d.String(), fresh.RTs, reused.RTs)
	}
}

// TestMultiServerRunnerReuse shrinks and regrows the server count on one
// runner; per-server state must be fully re-zeroed between runs.
func TestMultiServerRunnerReuse(t *testing.T) {
	r := NewRunner()
	for _, servers := range []int{4, 1, 2, 4} {
		p := mmParams(0.6*float64(servers), 1, 1, 2000, 7)
		if servers > 1 {
			p.Servers = servers
			p.Dispatch = jsqDispatcher{}
		}
		var reused, fresh Result
		if err := r.RunInto(p, &reused); err != nil {
			t.Fatalf("servers=%d: %v", servers, err)
		}
		if err := NewRunner().RunInto(p, &fresh); err != nil {
			t.Fatalf("servers=%d fresh: %v", servers, err)
		}
		requireFloatsBitIdentical(t, "RTs", fresh.RTs, reused.RTs)
	}
}
