//go:build !race

package queuesim_test

// raceEnabled mirrors the in-package gate for the external test package;
// see race_off_test.go.
const raceEnabled = false
