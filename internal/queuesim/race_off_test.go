//go:build !race

package queuesim

// raceEnabled gates allocation-budget tests: the race detector
// instruments allocations, so AllocsPerRun assertions only hold in
// non-race builds.
const raceEnabled = false
