package queuesim

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
)

// tracerParams is a fully deterministic single-slot scenario: queries
// arrive every 100 s (far apart, so they never queue), each needs 10 s of
// service at mu = 0.1, the sprint doubles the rate (mu_e = 0.2), and the
// 2 s timeout fires mid-service. With the default budget of 100 s every
// query sprints to completion; shrinking the budget exercises exhaustion
// and refill.
func tracerParams(budget, refill float64) Params {
	return Params{
		ArrivalRate:   0.01,
		ArrivalKind:   dist.KindDeterministic,
		Service:       dist.Deterministic{Value: 10},
		ServiceRate:   0.1,
		SprintRate:    0.2,
		Timeout:       2,
		BudgetSeconds: budget,
		RefillTime:    refill,
		NumQueries:    2,
		Seed:          1,
	}
}

// wantEvent is one expected lifecycle event; Time and Value are compared
// with a small tolerance.
type wantEvent struct {
	typ   obs.EventType
	t     float64
	query int
	value float64
}

func checkEvents(t *testing.T, got []obs.QueryEvent, want []wantEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("traced %d events, want %d:\n%+v", len(got), len(want), got)
	}
	const tol = 1e-9
	for i, w := range want {
		g := got[i]
		if g.Type != w.typ || g.Query != w.query ||
			math.Abs(g.Time-w.t) > tol || math.Abs(g.Value-w.value) > tol {
			t.Errorf("event %d = %+v, want {%s t=%v query=%d value=%v}",
				i, g, w.typ, w.t, w.query, w.value)
		}
	}
}

func TestTracerEventSequence(t *testing.T) {
	// Walk the full lifecycle analytically. Query 0 arrives at t=100
	// (service 10 s), starts immediately (queueing delay 0), its 2 s
	// timeout fires at 102 with 20% of the work done, the sprint halves
	// the remaining 8 s, so it departs at 106 with response time 6.
	// Query 1 repeats the pattern at t=200 with the budget down by the
	// 4 sprint-seconds query 0 consumed.
	tr := obs.NewRingTracer(64)
	p := tracerParams(100, 0)
	p.Tracer = tr
	res := MustRun(p)
	if len(res.RTs) != 2 {
		t.Fatalf("simulated %d queries", len(res.RTs))
	}
	checkEvents(t, tr.Events(), []wantEvent{
		{obs.EvArrival, 100, 0, 10},
		{obs.EvServiceStart, 100, 0, 0},
		{obs.EvTimeout, 102, 0, 2},
		{obs.EvSprintStart, 102, 0, 100}, // budget level at engagement
		{obs.EvSprintStop, 106, 0, 4},    // sprint lasted 4 s
		{obs.EvDeparture, 106, 0, 6},     // response time 6 s
		{obs.EvArrival, 200, 1, 10},
		{obs.EvServiceStart, 200, 1, 0},
		{obs.EvTimeout, 202, 1, 2},
		{obs.EvSprintStart, 202, 1, 96}, // 100 minus query 0's 4 s
		{obs.EvSprintStop, 206, 1, 4},
		{obs.EvDeparture, 206, 1, 6},
	})
}

func TestTracerBudgetExhaustion(t *testing.T) {
	// A 2 s budget (no refill) drains mid-sprint: query 0 engages at 102,
	// the budget empties at 104 (system-wide event first, then the forced
	// per-query stop), and the remaining 40% of the work finishes at the
	// sustained rate by 108. Query 1 times out but can never engage.
	tr := obs.NewRingTracer(64)
	p := tracerParams(2, 0)
	p.Tracer = tr
	MustRun(p)
	checkEvents(t, tr.Events(), []wantEvent{
		{obs.EvArrival, 100, 0, 10},
		{obs.EvServiceStart, 100, 0, 0},
		{obs.EvTimeout, 102, 0, 2},
		{obs.EvSprintStart, 102, 0, 2},
		{obs.EvBudgetExhausted, 104, -1, 1}, // one active sprint stopped
		{obs.EvSprintStop, 104, 0, 2},
		{obs.EvDeparture, 108, 0, 8},
		{obs.EvArrival, 200, 1, 10},
		{obs.EvServiceStart, 200, 1, 0},
		{obs.EvTimeout, 202, 1, 2}, // fires, but the budget is gone
		{obs.EvDeparture, 210, 1, 10},
	})
}

func TestTracerRefillAfterExhaustion(t *testing.T) {
	// With a refill window the budget becomes usable again between
	// queries: the refill event must appear exactly once, tagged to the
	// query whose engagement observed the replenished budget.
	tr := obs.NewRingTracer(64)
	p := tracerParams(2, 100)
	p.Tracer = tr
	MustRun(p)
	events := tr.Events()
	if got := tr.Count(obs.EvRefill); got != 1 {
		t.Fatalf("%d refill events, want 1:\n%+v", got, events)
	}
	if got := tr.Count(obs.EvSprintStart); got != 2 {
		t.Fatalf("%d sprint starts, want 2", got)
	}
	if tr.Count(obs.EvBudgetExhausted) == 0 {
		t.Fatal("no budget exhaustion despite a 2 s budget")
	}
	for i, e := range events {
		if e.Type != obs.EvRefill {
			continue
		}
		if e.Query != 1 {
			t.Fatalf("refill tagged to query %d, want 1", e.Query)
		}
		if i+1 >= len(events) || events[i+1].Type != obs.EvSprintStart {
			t.Fatalf("refill not immediately followed by sprint_start:\n%+v", events)
		}
		if e.Value <= 0 {
			t.Fatalf("refill budget level %v, want > 0", e.Value)
		}
	}
}

func TestTracerDoesNotPerturbSimulation(t *testing.T) {
	// Attaching a tracer must not change a single response time: the
	// hooks only read simulator state.
	p := Params{
		ArrivalRate: 0.8 * 0.02,
		Service:     dist.LogNormalFromMeanCV(50, 0.3),
		ServiceRate: 0.02,
		SprintRate:  1.6 * 0.02,
		Timeout:     60, BudgetSeconds: 300, RefillTime: 200,
		NumQueries: 500, Warmup: 50, Seed: 7,
	}
	plain := MustRun(p)
	p.Tracer = obs.NewRingTracer(1 << 14)
	traced := MustRun(p)
	if len(plain.RTs) != len(traced.RTs) {
		t.Fatalf("traced run measured %d queries, plain %d", len(traced.RTs), len(plain.RTs))
	}
	for i := range plain.RTs {
		if plain.RTs[i] != traced.RTs[i] {
			t.Fatalf("RT %d diverged: %v vs %v", i, plain.RTs[i], traced.RTs[i])
		}
	}
	if plain.SprintSeconds != traced.SprintSeconds {
		t.Fatalf("sprint seconds diverged: %v vs %v", plain.SprintSeconds, traced.SprintSeconds)
	}
}

func TestTracerDepartureAccounting(t *testing.T) {
	// Every simulated query (warmup included) must produce exactly one
	// arrival and one departure, and response times in the events must
	// match the result.
	tr := obs.NewRingTracer(1 << 14)
	p := Params{
		ArrivalRate: 0.8 * 0.02,
		Service:     dist.LogNormalFromMeanCV(50, 0.3),
		ServiceRate: 0.02,
		SprintRate:  1.6 * 0.02,
		Timeout:     60, BudgetSeconds: 300, RefillTime: 200,
		NumQueries: 400, Warmup: 40, Seed: 21,
		Tracer: tr,
	}
	res := MustRun(p)
	total := p.NumQueries + p.Warmup
	if got := tr.Count(obs.EvArrival); got != total {
		t.Fatalf("%d arrivals traced, want %d", got, total)
	}
	if got := tr.Count(obs.EvDeparture); got != total {
		t.Fatalf("%d departures traced, want %d", got, total)
	}
	// Departure events for measured queries carry the response times.
	rts := map[int]float64{}
	for _, e := range tr.Events() {
		if e.Type == obs.EvDeparture && e.Query >= p.Warmup {
			rts[e.Query] = e.Value
		}
	}
	if len(rts) != p.NumQueries {
		t.Fatalf("%d measured departures, want %d", len(rts), p.NumQueries)
	}
	for i, rt := range res.RTs {
		if got := rts[p.Warmup+i]; got != rt {
			t.Fatalf("departure RT for query %d = %v, result says %v", p.Warmup+i, got, rt)
		}
	}
}

func TestTracerMultiClass(t *testing.T) {
	// Multi-class events are tagged with their class name; system-wide
	// budget events are not attributed to any class.
	tr := obs.NewRingTracer(1 << 14)
	_, err := RunMulti(MultiParams{
		ArrivalRate: 0.02,
		Classes: []ClassParams{
			{Name: "A", Weight: 0.5, Service: dist.LogNormalFromMeanCV(40, 0.3),
				ServiceRate: 0.025, SprintRate: 0.05, Timeout: 20},
			{Name: "B", Weight: 0.5, Service: dist.LogNormalFromMeanCV(80, 0.3),
				ServiceRate: 0.0125, SprintRate: 0.02, Timeout: 40},
		},
		BudgetSeconds: 100, RefillTime: 400,
		NumQueries: 300, Seed: 5,
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Count(obs.EvDeparture); got != 300 {
		t.Fatalf("%d departures, want 300", got)
	}
	classes := map[string]int{}
	for _, e := range tr.Events() {
		if e.Type == obs.EvBudgetExhausted {
			if e.Class != "" || e.Query != -1 {
				t.Fatalf("budget event attributed to a query: %+v", e)
			}
			continue
		}
		if e.Class != "A" && e.Class != "B" {
			t.Fatalf("event without class tag: %+v", e)
		}
		classes[e.Class]++
	}
	if classes["A"] == 0 || classes["B"] == 0 {
		t.Fatalf("class mix %v: both classes should appear", classes)
	}
}

func TestRunFlushesSimMetrics(t *testing.T) {
	// Each run flushes its totals into the default registry once.
	runs := obs.Default().Counter("mdsprint_sim_runs_total", "")
	queries := obs.Default().Counter("mdsprint_sim_queries_total", "")
	beforeRuns, beforeQueries := runs.Value(), queries.Value()
	MustRun(tracerParams(100, 0))
	if got := runs.Value() - beforeRuns; got != 1 {
		t.Fatalf("runs counter moved by %v, want 1", got)
	}
	if got := queries.Value() - beforeQueries; got != 2 {
		t.Fatalf("queries counter moved by %v, want 2", got)
	}
}
