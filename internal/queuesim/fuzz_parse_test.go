package queuesim_test

// FuzzParseDiscipline shakes the discipline and dispatcher spec parsers
// with arbitrary strings (they must never panic and must round-trip
// through String()/Canon()), then drives any parseable combination
// through a short run twice, asserting the response-time vectors are
// bit-identical — the fingerprint a sweep cache would key on.

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/queuesim/dispatch"
)

func FuzzParseDiscipline(f *testing.F) {
	f.Add("fifo", "jsq", uint64(1))
	f.Add("lifo", "lwl", uint64(2))
	f.Add("srpt", "rr", uint64(3))
	f.Add("serpt(0.3)", "rnd(2)", uint64(4))
	f.Add("ps", "rnd(1)", uint64(5))
	f.Add("SERPT( 1.5 )", "RND( 3 )", uint64(6))
	f.Add("serpt(nan)", "rnd(0)", uint64(7))
	f.Add("fifo(", "rnd(", uint64(8))

	f.Fuzz(func(t *testing.T, discSpec, dispSpec string, seed uint64) {
		disc, derr := queuesim.ParseDiscipline(discSpec)
		if derr == nil {
			// Round-trip: the rendered form must parse back to the same
			// discipline.
			again, err := queuesim.ParseDiscipline(disc.String())
			if err != nil {
				t.Fatalf("round-trip of %q (from %q) failed: %v", disc.String(), discSpec, err)
			}
			if again != disc {
				t.Fatalf("round-trip of %q: got %+v, want %+v", discSpec, again, disc)
			}
		}
		dsp, perr := dispatch.Parse(dispSpec)
		if perr == nil {
			again, err := dispatch.Parse(dsp.Canon())
			if err != nil {
				t.Fatalf("round-trip of %q (from %q) failed: %v", dsp.Canon(), dispSpec, err)
			}
			if again.Canon() != dsp.Canon() {
				t.Fatalf("round-trip of %q: got %q, want %q", dispSpec, again.Canon(), dsp.Canon())
			}
		}
		if derr != nil {
			return
		}

		p := queuesim.Params{
			ArrivalRate:   5,
			Service:       dist.NewExponential(8),
			ServiceRate:   8,
			SprintRate:    12,
			Timeout:       0.1,
			BudgetSeconds: 1,
			RefillTime:    10,
			NumQueries:    60,
			Discipline:    disc,
			Seed:          seed,
		}
		if disc.Kind == queuesim.DiscPS {
			p.Timeout = -1
			p.BudgetSeconds = 0
		}
		if perr == nil {
			p.Servers = 4 // rnd(d) needs d <= servers to stay meaningful
			p.Dispatch = dsp
		}

		first, err := queuesim.Run(p)
		if err != nil {
			t.Fatalf("parseable specs (%q, %q) rejected at run: %v", discSpec, dispSpec, err)
		}
		second, err := queuesim.Run(p)
		if err != nil {
			t.Fatalf("second run errored: %v", err)
		}
		if len(first.RTs) != len(second.RTs) {
			t.Fatalf("run fingerprints differ: %d vs %d RTs", len(first.RTs), len(second.RTs))
		}
		for i := range first.RTs {
			if math.Float64bits(first.RTs[i]) != math.Float64bits(second.RTs[i]) {
				t.Fatalf("RTs[%d] not bit-identical across reruns: %x vs %x",
					i, math.Float64bits(first.RTs[i]), math.Float64bits(second.RTs[i]))
			}
		}
	})
}
