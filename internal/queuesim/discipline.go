package queuesim

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file makes the ready queue pluggable. The paper's model is a FIFO
// G/G/k queue, but which query runs next (and whether a running query can
// be displaced) changes both the response-time distribution and the value
// of a sprint prediction — SkipPredict's cheap/expensive split is exactly
// a size-ordered discipline. The FIFO path keeps the original ring buffer
// and is bit-identical to the retained reference engine; the ordered
// disciplines share one intrusive index heap over the query slab, so
// selecting a discipline never adds a steady-state allocation.

// DisciplineKind names a queueing discipline.
type DisciplineKind string

// The simulator's discipline catalog.
const (
	// DiscFIFO is first-in-first-out — the paper's model and the
	// default. The zero Discipline selects it.
	DiscFIFO DisciplineKind = "fifo"
	// DiscLIFO is last-in-first-out, non-preemptive.
	DiscLIFO DisciplineKind = "lifo"
	// DiscSRPT is preemptive shortest-remaining-processing-time, using
	// the query's true sampled service time.
	DiscSRPT DisciplineKind = "srpt"
	// DiscSERPT is SRPT driven by a noisy prediction of the service
	// time instead of the true value — the discipline a deployed
	// predictor would actually run. PredictCV sets the noise.
	DiscSERPT DisciplineKind = "serpt"
	// DiscPS is egalitarian processor sharing: every query in the
	// system progresses simultaneously at rate min(1, Slots/n). PS does
	// not compose with sprint timeouts (there is no per-query "has
	// waited too long" moment when everyone is always in service), so
	// it requires sprinting disabled.
	DiscPS DisciplineKind = "ps"
)

// Discipline selects the ready-queue ordering for a run. The zero value
// is FIFO, so existing Params are unaffected.
type Discipline struct {
	Kind DisciplineKind
	// PredictCV is the coefficient of variation of SERPT's
	// multiplicative lognormal prediction noise (mean 1). Zero means
	// perfect predictions, degenerating SERPT to SRPT. Only valid for
	// DiscSERPT.
	PredictCV float64
}

// canonical returns d in normal form: an empty kind becomes FIFO.
func (d Discipline) canonical() Discipline {
	if d.Kind == "" {
		d.Kind = DiscFIFO
	}
	return d
}

func (d Discipline) validate() error {
	switch d.canonical().Kind {
	case DiscFIFO, DiscLIFO, DiscSRPT, DiscPS:
		//lint:ignore floateq rejecting any nonzero spelling, including NaN, is the point; no epsilon is meaningful here
		if d.PredictCV != 0 {
			return fmt.Errorf("queuesim: discipline %q does not take a prediction CV", d.Kind)
		}
	case DiscSERPT:
		if d.PredictCV < 0 || math.IsNaN(d.PredictCV) || d.PredictCV > maxPredictCV {
			return fmt.Errorf("queuesim: serpt prediction CV %v out of range [0, %v]", d.PredictCV, float64(maxPredictCV))
		}
	default:
		return fmt.Errorf("queuesim: unknown discipline %q", d.Kind)
	}
	return nil
}

// maxPredictCV bounds SERPT's noise spec, mirroring dist's maxCV guard.
const maxPredictCV = 1e6

// String renders the discipline in the spec grammar ParseDiscipline
// accepts, e.g. "fifo" or "serpt(0.3)".
func (d Discipline) String() string {
	d = d.canonical()
	if d.Kind == DiscSERPT && d.PredictCV > 0 {
		return fmt.Sprintf("serpt(%g)", d.PredictCV)
	}
	return string(d.Kind)
}

// ParseDiscipline parses a discipline spec: one of "fifo", "lifo",
// "srpt", "serpt", "serpt(cv)" or "ps", case-insensitively. The optional
// argument form is only valid for serpt, whose cv is the prediction
// noise's coefficient of variation. It never panics on malformed input.
func ParseDiscipline(spec string) (Discipline, error) {
	s := strings.TrimSpace(strings.ToLower(spec))
	name, arg := s, ""
	hasArg := false
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Discipline{}, fmt.Errorf("queuesim: discipline spec %q missing ')'", spec)
		}
		name, arg = strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:len(s)-1])
		hasArg = true
	}
	switch DisciplineKind(name) {
	case DiscFIFO, DiscLIFO, DiscSRPT, DiscPS:
		if hasArg {
			return Discipline{}, fmt.Errorf("queuesim: discipline %q takes no arguments", name)
		}
		return Discipline{Kind: DisciplineKind(name)}, nil
	case DiscSERPT:
		d := Discipline{Kind: DiscSERPT}
		if arg != "" {
			cv, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return Discipline{}, fmt.Errorf("queuesim: serpt cv %q: %v", arg, err)
			}
			d.PredictCV = cv
		}
		if err := d.validate(); err != nil {
			return Discipline{}, err
		}
		return d, nil
	default:
		return Discipline{}, fmt.Errorf("queuesim: unknown discipline %q", spec)
	}
}

// MustParseDiscipline is ParseDiscipline for static specs; it panics on
// error.
func MustParseDiscipline(spec string) Discipline {
	d, err := ParseDiscipline(spec)
	if err != nil {
		panic(err)
	}
	return d
}

// qHeap is an intrusive index heap over the runner's query slab: it holds
// pool indices and orders them by the (key, tie) pair stored on the query
// itself, so pushing or popping a ready query never allocates. One heap
// per server replaces the FIFO ring when an ordered discipline runs.
type qHeap struct {
	idx []int32
}

func (h *qHeap) reset() { h.idx = h.idx[:0] }

// hless orders two pooled queries by their ready-queue key, breaking ties
// by the tie field (arrival id) so equal keys stay FIFO among themselves.
func (r *Runner) hless(a, b int32) bool {
	qa, qb := &r.pool[a], &r.pool[b]
	//lint:ignore floateq heap comparator must order exact keys; an epsilon would corrupt the deterministic tie-break
	if qa.key != qb.key {
		return qa.key < qb.key
	}
	return qa.tie < qb.tie
}

// hpush adds query index qi to heap h.
func (r *Runner) hpush(h *qHeap, qi int32) {
	h.idx = append(h.idx, qi)
	i := len(h.idx) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !r.hless(h.idx[i], h.idx[parent]) {
			break
		}
		h.idx[i], h.idx[parent] = h.idx[parent], h.idx[i]
		i = parent
	}
}

// hpop removes and returns the minimum-key query index.
func (r *Runner) hpop(h *qHeap) int32 {
	top := h.idx[0]
	n := len(h.idx) - 1
	h.idx[0] = h.idx[n]
	h.idx = h.idx[:n]
	i := 0
	for {
		smallest := i
		if l := 2*i + 1; l < n && r.hless(h.idx[l], h.idx[smallest]) {
			smallest = l
		}
		if ri := 2*i + 2; ri < n && r.hless(h.idx[ri], h.idx[smallest]) {
			smallest = ri
		}
		if smallest == i {
			return top
		}
		h.idx[i], h.idx[smallest] = h.idx[smallest], h.idx[i]
		i = smallest
	}
}
