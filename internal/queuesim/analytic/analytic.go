// Package analytic answers queue-simulator queries with queueing
// theory's closed forms instead of simulation, when a form applies.
// These are the formulas the simulator's own validation suite
// (queuesim's analytic tests) checks against, promoted into a reusable
// surrogate so the staged estimator (internal/tier) can serve eligible
// predictions at closed-form cost:
//
//   - M/M/1 and M/M/k via Erlang-C (exponential arrivals and service,
//     FIFO or non-preemptive LIFO, any slot count);
//   - M/G/1 via Pollaczek–Khinchine (general service with a finite
//     second moment, single slot, FIFO/LIFO);
//   - M/G/1-PS via the processor-sharing insensitivity result (any
//     service distribution, mean only);
//   - M/M/1-SRPT via the Schrage–Miller transform-free form (numeric
//     quadrature — cheap next to a simulation, exact in the limit).
//
// Everything else — sprinting enabled, non-Poisson arrivals, multi-queue
// dispatch, SERPT's noisy predictions, service distributions without a
// usable second moment — is out of applicability and reported as a
// typed error, never approximated. MeanRT answers are exact properties
// of the queueing model; a simulation of the same Params converges to
// them as replications grow, so the two disagree only by the
// simulation's own sampling noise.
package analytic

import (
	"errors"
	"math"

	"mdsprint/internal/dist"
	"mdsprint/internal/queuesim"
)

// Applicability rejections. Static values so the estimator's rejection
// path stays allocation-free; errors.Is works against each.
var (
	// ErrSprinting: sprint timeouts/budgets have no closed form — the
	// whole point of the simulator.
	ErrSprinting = errors.New("analytic: sprinting enabled, no closed form")
	// ErrArrival: closed forms need Poisson (exponential) arrivals.
	ErrArrival = errors.New("analytic: non-exponential arrivals")
	// ErrMultiQueue: per-server queues with a dispatcher are not a
	// single M/G/k station.
	ErrMultiQueue = errors.New("analytic: multi-queue dispatch has no closed form")
	// ErrDiscipline: SERPT (noisy predictions) has no closed form.
	ErrDiscipline = errors.New("analytic: discipline has no closed form")
	// ErrService: the service distribution lacks the moment the form
	// needs (no second moment, or an infinite one).
	ErrService = errors.New("analytic: service distribution lacks a usable moment")
	// ErrMultiSlot: multiple slots need exponential service (Erlang-C);
	// M/G/k has no exact mean-wait formula.
	ErrMultiSlot = errors.New("analytic: multiple slots need exponential service")
	// ErrUnstable: offered load at or above capacity — no steady state.
	ErrUnstable = errors.New("analytic: utilization at or above 1")
	// ErrInvalid: parameters the simulator itself would reject.
	ErrInvalid = errors.New("analytic: invalid parameters")
)

// ErlangC returns the M/M/k probability of waiting, C(k, a), with
// offered load a = lambda/mu. It requires a < k (stability).
func ErlangC(k int, a float64) float64 {
	// Sum a^n/n! iteratively to avoid overflow for moderate k.
	term := 1.0 // a^0/0!
	sum := term
	for n := 1; n < k; n++ {
		term *= a / float64(n)
		sum += term
	}
	top := term * a / float64(k) / (1 - a/float64(k)) // a^k/k! * 1/(1-rho)
	return top / (sum + top)
}

// MMKWait returns the analytic mean waiting time Wq and mean response
// time W for an M/M/k queue with arrival rate lambda and per-server
// service rate mu.
func MMKWait(lambda, mu float64, k int) (wq, w float64) {
	a := lambda / mu
	wq = ErlangC(k, a) / (float64(k)*mu - lambda)
	return wq, wq + 1/mu
}

// MM1MeanRT returns the M/M/1 mean response time 1/(mu - lambda).
func MM1MeanRT(lambda, mu float64) float64 { return 1 / (mu - lambda) }

// MG1MeanRT returns the M/G/1-FIFO mean response time by
// Pollaczek–Khinchine: E[T] = E[S] + lambda*E[S^2] / (2*(1-rho)).
func MG1MeanRT(lambda, meanS, m2S float64) float64 {
	rho := lambda * meanS
	return meanS + lambda*m2S/(2*(1-rho))
}

// PSMeanRT returns the M/G/1-PS mean response time E[S]/(1-rho) — the
// insensitivity result: processor sharing's mean depends on the service
// distribution only through its mean.
func PSMeanRT(lambda, meanS float64) float64 {
	return meanS / (1 - lambda*meanS)
}

// SRPTMM1MeanRT numerically evaluates the Schrage–Miller transform-free
// closed form for the M/G/1-SRPT mean response time with exponential
// service at rate mu:
//
//	E[T(x)] = lambda*(m2(x) + x^2*(1-F(x))) / (2*(1-rho(x))^2)
//	        + integral_0^x dt / (1 - rho(t))
//	E[T]    = integral_0^inf E[T(x)] f(x) dx
//
// with rho(x) = lambda*m1(x), m1(x) = int_0^x t f(t) dt and
// m2(x) = int_0^x t^2 f(t) dt, which for f = mu*exp(-mu t) have the
// closed antiderivatives used below. The outer integral and the inner
// waiting integral are evaluated on one shared trapezoidal grid.
func SRPTMM1MeanRT(lambda, mu float64) float64 {
	upper := 40.0 / mu // exp(-40) tail: negligible mass
	const n = 40000
	h := upper / n
	rho := func(x float64) float64 {
		m1 := (1 - math.Exp(-mu*x)*(1+mu*x)) / mu
		return lambda * m1
	}
	// Cumulative waiting integral W(x) = int_0^x dt/(1-rho(t)).
	wait := 0.0
	mean := 0.0
	prevInv := 1 / (1 - rho(0))
	for i := 1; i <= n; i++ {
		x := float64(i) * h
		inv := 1 / (1 - rho(x))
		wait += 0.5 * (prevInv + inv) * h
		prevInv = inv
		e := math.Exp(-mu * x)
		m2 := (2 - e*(mu*mu*x*x+2*mu*x+2)) / (mu * mu)
		res := lambda * (m2 + x*x*e) / (2 * (1 - rho(x)) * (1 - rho(x)))
		f := mu * e
		mean += (res + wait) * f * h
	}
	return mean
}

// expRate reports whether the service distribution is a catalog
// exponential, and its rate.
func expRate(d dist.Dist) (float64, bool) {
	e, ok := d.(dist.Exponential)
	if !ok {
		return 0, false
	}
	return e.Rate, true
}

// MeanRT answers p's mean response time from the applicable closed
// form, or reports why none applies. The answer is the exact queueing-
// model mean the simulator converges to; the success path performs no
// heap allocations.
func MeanRT(p queuesim.Params) (float64, error) {
	c := p.Canonical()
	if c.ArrivalRate <= 0 || math.IsNaN(c.ArrivalRate) || c.Service == nil || c.Slots <= 0 {
		return 0, ErrInvalid
	}
	if c.Sprinting() {
		return 0, ErrSprinting
	}
	if c.Arrival != nil {
		if _, ok := expRate(c.Arrival); !ok {
			return 0, ErrArrival
		}
	} else if c.ArrivalKind != dist.KindExponential {
		return 0, ErrArrival
	}
	if c.Servers > 1 {
		return 0, ErrMultiQueue
	}
	lambda := c.ArrivalRate
	meanS := c.Service.Mean()
	if !(meanS > 0) || math.IsInf(meanS, 1) {
		return 0, ErrService
	}

	switch c.Discipline.Kind {
	case queuesim.DiscPS:
		// Insensitivity: mean only, any service distribution, one
		// shared processor (the simulator's PS requires Slots-wide
		// sharing of a single server; keep to the validated shape).
		if c.Slots != 1 {
			return 0, ErrMultiSlot
		}
		if lambda*meanS >= 1 {
			return 0, ErrUnstable
		}
		return PSMeanRT(lambda, meanS), nil

	case queuesim.DiscSRPT:
		if c.Slots != 1 {
			return 0, ErrMultiSlot
		}
		mu, ok := expRate(c.Service)
		if !ok {
			return 0, ErrService
		}
		if lambda >= mu {
			return 0, ErrUnstable
		}
		return SRPTMM1MeanRT(lambda, mu), nil

	case queuesim.DiscFIFO, queuesim.DiscLIFO:
		// Non-preemptive LIFO shares FIFO's mean wait: any
		// work-conserving order-of-service rule that ignores service
		// times leaves the queue-length process (M/M/k) or the P-K mean
		// wait (M/G/1) unchanged.
		if mu, ok := expRate(c.Service); ok {
			if lambda >= float64(c.Slots)*mu {
				return 0, ErrUnstable
			}
			_, w := MMKWait(lambda, mu, c.Slots)
			return w, nil
		}
		if c.Slots != 1 {
			return 0, ErrMultiSlot
		}
		m2, ok := dist.SecondMoment(c.Service)
		if !ok {
			return 0, ErrService
		}
		if math.IsInf(m2, 1) || math.IsNaN(m2) {
			return 0, ErrService
		}
		if lambda*meanS >= 1 {
			return 0, ErrUnstable
		}
		return MG1MeanRT(lambda, meanS, m2), nil

	default: // SERPT and any future discipline
		return 0, ErrDiscipline
	}
}

// Applicability reports whether MeanRT can answer p, as the typed
// rejection (nil means a closed form applies).
func Applicability(p queuesim.Params) error {
	_, err := MeanRT(p)
	return err
}
