package analytic_test

import (
	"errors"
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/queuesim/analytic"
	"mdsprint/internal/stats"
)

// noSprint builds a sprint-disabled configuration with exponential
// arrivals — the shape every closed form requires.
func noSprint(lambda float64, service dist.Dist, mu float64) queuesim.Params {
	return queuesim.Params{
		ArrivalRate:   lambda,
		ArrivalKind:   dist.KindExponential,
		Service:       service,
		ServiceRate:   mu,
		SprintRate:    2 * mu, // irrelevant: policy below disables sprinting
		Timeout:       -1,
		BudgetSeconds: 0,
	}
}

func simMeanRT(t *testing.T, p queuesim.Params, queries int, seed uint64) float64 {
	t.Helper()
	p.NumQueries = queries
	p.Warmup = queries / 10
	p.Seed = seed
	return stats.Mean(queuesim.MustRun(p).RTs)
}

// TestMM1MMKAgainstSimulation is the promoted half of queuesim's own
// analytic validation: the reusable package's M/M/1 and Erlang-C
// answers must match simulation at the same tolerance schedule the
// simulator is held to (wider near saturation).
func TestMM1MMKAgainstSimulation(t *testing.T) {
	points := []struct {
		lambda, mu float64
		k          int
		tol        float64
	}{
		{lambda: 0.3, mu: 1, k: 1, tol: 0.04},
		{lambda: 0.7, mu: 1, k: 1, tol: 0.06},
		{lambda: 0.9, mu: 1, k: 1, tol: 0.12},
		{lambda: 1.5, mu: 1, k: 2, tol: 0.06},
		{lambda: 2.8, mu: 1, k: 4, tol: 0.06},
	}
	for _, pt := range points {
		p := noSprint(pt.lambda, dist.NewExponential(pt.mu), pt.mu)
		p.Slots = pt.k
		want, err := analytic.MeanRT(p)
		if err != nil {
			t.Fatalf("lambda=%v k=%d: unexpected rejection %v", pt.lambda, pt.k, err)
		}
		if pt.k == 1 {
			if mm1 := analytic.MM1MeanRT(pt.lambda, pt.mu); !stats.ApproxEqual(want, mm1, 1e-12) {
				t.Fatalf("k=1 route %v disagrees with MM1 form %v", want, mm1)
			}
		}
		got := simMeanRT(t, p, 60000, 11)
		if rel := math.Abs(got-want) / want; rel > pt.tol {
			t.Errorf("lambda=%v mu=%v k=%d: simulated %.4f vs analytic %.4f (rel err %.3f > %.3f)",
				pt.lambda, pt.mu, pt.k, got, want, rel, pt.tol)
		}
	}
}

// TestMG1PollaczekKhinchine validates the P-K route on non-exponential
// service: deterministic (cv=0, half the M/M/1 wait), uniform, and a
// finite-second-moment truncated Pareto.
func TestMG1PollaczekKhinchine(t *testing.T) {
	cases := []struct {
		name    string
		service dist.Dist
		lambda  float64
		tol     float64
	}{
		{"md1", dist.Deterministic{Value: 1}, 0.6, 0.05},
		{"uniform", dist.Uniform{Lo: 0.5, Hi: 1.5}, 0.6, 0.05},
		{"tpareto", dist.TruncatedPareto{Xm: 0.4, Alpha: 1.6, Max: 12}, 0.5, 0.09},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			meanS := tc.service.Mean()
			p := noSprint(tc.lambda, tc.service, 1/meanS)
			want, err := analytic.MeanRT(p)
			if err != nil {
				t.Fatalf("unexpected rejection: %v", err)
			}
			m2, ok := dist.SecondMoment(tc.service)
			if !ok {
				t.Fatalf("second moment unavailable for %v", tc.service)
			}
			if pk := analytic.MG1MeanRT(tc.lambda, meanS, m2); !stats.ApproxEqual(want, pk, 1e-12) {
				t.Fatalf("route %v disagrees with direct P-K %v", want, pk)
			}
			got := simMeanRT(t, p, 80000, 17)
			if rel := math.Abs(got-want) / want; rel > tc.tol {
				t.Errorf("%s: simulated %.4f vs P-K %.4f (rel err %.3f > %.3f)",
					tc.name, got, want, rel, tc.tol)
			}
		})
	}
}

// TestPSAndSRPTAndLIFORoutes validates the remaining discipline routes:
// PS insensitivity (lognormal service, mean-only), the Schrage–Miller
// SRPT form, and LIFO sharing FIFO's mean.
func TestPSAndSRPTAndLIFORoutes(t *testing.T) {
	t.Run("ps-insensitivity", func(t *testing.T) {
		service := dist.LogNormalFromMeanCV(1, 1.5)
		p := noSprint(0.6, service, 1)
		p.Discipline = queuesim.Discipline{Kind: queuesim.DiscPS}
		want, err := analytic.MeanRT(p)
		if err != nil {
			t.Fatalf("unexpected rejection: %v", err)
		}
		if !stats.ApproxEqual(want, 1/(1-0.6), 1e-9) {
			t.Fatalf("PS mean %v != E[S]/(1-rho) %v", want, 1/(1-0.6))
		}
		got := simMeanRT(t, p, 60000, 23)
		if rel := math.Abs(got-want) / want; rel > 0.08 {
			t.Errorf("PS: simulated %.4f vs insensitivity %.4f (rel err %.3f)", got, want, rel)
		}
	})
	t.Run("srpt", func(t *testing.T) {
		p := noSprint(0.8, dist.NewExponential(1), 1)
		p.Discipline = queuesim.Discipline{Kind: queuesim.DiscSRPT}
		want, err := analytic.MeanRT(p)
		if err != nil {
			t.Fatalf("unexpected rejection: %v", err)
		}
		if fifo := analytic.MM1MeanRT(0.8, 1); want >= fifo {
			t.Fatalf("SRPT closed form %.4f >= FIFO %.4f; integration bug", want, fifo)
		}
		got := simMeanRT(t, p, 60000, 59)
		if rel := math.Abs(got-want) / want; rel > 0.06 {
			t.Errorf("SRPT: simulated %.4f vs Schrage–Miller %.4f (rel err %.3f)", got, want, rel)
		}
	})
	t.Run("lifo-equals-fifo-mean", func(t *testing.T) {
		p := noSprint(0.7, dist.NewExponential(1), 1)
		p.Discipline = queuesim.Discipline{Kind: queuesim.DiscLIFO}
		want, err := analytic.MeanRT(p)
		if err != nil {
			t.Fatalf("unexpected rejection: %v", err)
		}
		if !stats.ApproxEqual(want, analytic.MM1MeanRT(0.7, 1), 1e-12) {
			t.Fatalf("LIFO mean %v != FIFO mean %v", want, analytic.MM1MeanRT(0.7, 1))
		}
		got := simMeanRT(t, p, 60000, 71)
		if rel := math.Abs(got-want) / want; rel > 0.08 {
			t.Errorf("LIFO: simulated %.4f vs analytic %.4f (rel err %.3f)", got, want, rel)
		}
	})
}

// TestRejections pins every out-of-applicability path to its typed
// error — the gate is what keeps the cheap tier from answering
// questions the closed forms cannot.
func TestRejections(t *testing.T) {
	base := func() queuesim.Params { return noSprint(0.6, dist.NewExponential(1), 1) }
	cases := []struct {
		name string
		mut  func(*queuesim.Params)
		want error
	}{
		{"sprinting-on", func(p *queuesim.Params) {
			p.Timeout = 1
			p.BudgetSeconds = 50
			p.RefillTime = 100
		}, analytic.ErrSprinting},
		{"pareto-arrivals", func(p *queuesim.Params) {
			p.ArrivalKind = dist.KindPareto
		}, analytic.ErrArrival},
		{"arrival-dist-override", func(p *queuesim.Params) {
			p.Arrival = dist.Uniform{Lo: 0.5, Hi: 2.5}
		}, analytic.ErrArrival},
		{"multi-queue", func(p *queuesim.Params) {
			p.Servers = 4
		}, analytic.ErrMultiQueue},
		{"serpt", func(p *queuesim.Params) {
			p.Discipline = queuesim.Discipline{Kind: queuesim.DiscSERPT, PredictCV: 0.5}
		}, analytic.ErrDiscipline},
		{"pareto-service-infinite-m2", func(p *queuesim.Params) {
			p.Service = dist.Pareto{Xm: 0.5, Alpha: 1.8}
		}, analytic.ErrService},
		{"no-second-moment", func(p *queuesim.Params) {
			p.Service = opaqueDist{}
		}, analytic.ErrService},
		{"mg-k", func(p *queuesim.Params) {
			p.Service = dist.Deterministic{Value: 1}
			p.Slots = 2
		}, analytic.ErrMultiSlot},
		{"srpt-non-exp-service", func(p *queuesim.Params) {
			p.Service = dist.Deterministic{Value: 1}
			p.Discipline = queuesim.Discipline{Kind: queuesim.DiscSRPT}
		}, analytic.ErrService},
		{"overloaded", func(p *queuesim.Params) {
			p.ArrivalRate = 1.2
		}, analytic.ErrUnstable},
		{"ps-multi-slot", func(p *queuesim.Params) {
			p.Discipline = queuesim.Discipline{Kind: queuesim.DiscPS}
			p.Slots = 3
		}, analytic.ErrMultiSlot},
		{"invalid-rate", func(p *queuesim.Params) {
			p.ArrivalRate = 0
		}, analytic.ErrInvalid},
		{"infinite-mean-service", func(p *queuesim.Params) {
			p.Service = dist.Pareto{Xm: 0.5, Alpha: 0.9}
		}, analytic.ErrService},
		{"ps-overloaded", func(p *queuesim.Params) {
			p.Discipline = queuesim.Discipline{Kind: queuesim.DiscPS}
			p.ArrivalRate = 1.2
		}, analytic.ErrUnstable},
		{"srpt-multi-slot", func(p *queuesim.Params) {
			p.Discipline = queuesim.Discipline{Kind: queuesim.DiscSRPT}
			p.Slots = 2
		}, analytic.ErrMultiSlot},
		{"srpt-overloaded", func(p *queuesim.Params) {
			p.Discipline = queuesim.Discipline{Kind: queuesim.DiscSRPT}
			p.ArrivalRate = 1.2
		}, analytic.ErrUnstable},
		{"mg1-overloaded", func(p *queuesim.Params) {
			p.Service = dist.Deterministic{Value: 1}
			p.ArrivalRate = 1.2
		}, analytic.ErrUnstable},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mut(&p)
			if _, err := analytic.MeanRT(p); !errors.Is(err, tc.want) {
				t.Fatalf("MeanRT rejection = %v, want %v", err, tc.want)
			}
			if err := analytic.Applicability(p); !errors.Is(err, tc.want) {
				t.Fatalf("Applicability = %v, want %v", err, tc.want)
			}
		})
	}
	// And the happy path: an eligible config reports nil.
	p := base()
	if err := analytic.Applicability(p); err != nil {
		t.Fatalf("eligible config rejected: %v", err)
	}
}

// opaqueDist is a distribution outside the moment catalog.
type opaqueDist struct{}

func (opaqueDist) Sample(*dist.RNG) float64 { return 1 }
func (opaqueDist) Mean() float64            { return 1 }
func (opaqueDist) String() string           { return "opaque" }

// TestMeanRTZeroAllocs pins the success and rejection paths
// allocation-free: the tier estimator consults this gate on every
// decide, so it must not disturb sprintd's pooled hot path.
func TestMeanRTZeroAllocs(t *testing.T) {
	ok := noSprint(0.6, dist.NewExponential(1), 1)
	rej := ok
	rej.Timeout = 1
	rej.BudgetSeconds = 50
	if n := testing.AllocsPerRun(200, func() {
		if _, err := analytic.MeanRT(ok); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("MeanRT success path allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := analytic.MeanRT(rej); err == nil {
			t.Fatal("expected rejection")
		}
	}); n != 0 {
		t.Errorf("MeanRT rejection path allocates %v/op, want 0", n)
	}
}
