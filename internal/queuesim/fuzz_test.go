package queuesim

// FuzzRunDeterminism shakes the pooled engine with arbitrary
// distribution specs and policy knobs, checking three properties on
// every input: Run never panics on validated parameters, running twice
// with the same seed is bit-identical (determinism), and the pooled
// engine matches the reference implementation bit-for-bit (equivalence).

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/sprint"
)

// fuzzUsableDist vets a parsed distribution for simulation: sampling must
// yield finite non-negative values (service additionally strictly
// positive). NaN samples are excluded because NaN event times make heap
// ordering comparator-dependent — they would diff the two engines'
// internal layouts, not their semantics.
func fuzzUsableDist(d dist.Dist, seed uint64, strictlyPositive bool) bool {
	rng := dist.NewRNG(seed ^ 0xf00d)
	for i := 0; i < 64; i++ {
		v := d.Sample(rng)
		if math.IsNaN(v) || v < 0 {
			return false
		}
		if strictlyPositive && v == 0 {
			return false
		}
	}
	return true
}

func FuzzRunDeterminism(f *testing.F) {
	f.Add(uint64(1), "exp(1.2)", "exp(1)", 0.4, 5.0, 30.0, uint8(0), uint8(0), uint8(40), 2.0, "fifo", uint8(0), uint8(0))
	f.Add(uint64(7), "pareto(0.4,2.5)", "lognormal(0.8,0.6)", 0.1, 2.0, 10.0, uint8(1), uint8(2), uint8(63), 1.8, "srpt", uint8(0), uint8(0))
	f.Add(uint64(42), "det(0.8)", "erlang(3,4)", -1.0, 0.0, 0.0, uint8(0), uint8(1), uint8(10), 0.0, "ps", uint8(0), uint8(0))
	f.Add(uint64(9), "uniform(0.1,0.9)", "hyperexp(0.7,2.5)", 0.05, 1.0, 5.0, uint8(2), uint8(7), uint8(33), 0.5, "serpt(0.4)", uint8(2), uint8(1))
	f.Add(uint64(11), "exp(3)", "exp(2)", 0.2, 3.0, 20.0, uint8(0), uint8(0), uint8(50), 1.5, "lifo", uint8(3), uint8(0))

	f.Fuzz(func(t *testing.T, seed uint64, arrSpec, svcSpec string,
		timeout, budget, refillTime float64, mode, slots, queries uint8, sprintRate float64,
		discSpec string, servers, dispPick uint8) {
		arrival, err := dist.ParseDist(arrSpec)
		if err != nil {
			t.Skip()
		}
		service, err := dist.ParseDist(svcSpec)
		if err != nil {
			t.Skip()
		}
		if !fuzzUsableDist(arrival, seed, false) || !fuzzUsableDist(service, seed, true) {
			t.Skip()
		}
		if math.IsNaN(timeout) || math.IsInf(timeout, 0) {
			t.Skip()
		}
		if math.IsNaN(budget) || math.IsInf(budget, 0) || budget < 0 || budget > 1e6 {
			t.Skip()
		}
		if math.IsNaN(refillTime) || math.IsInf(refillTime, 0) || refillTime < 0 || refillTime > 1e6 {
			t.Skip()
		}
		if math.IsNaN(sprintRate) || math.IsInf(sprintRate, 0) || sprintRate < 0 || sprintRate > 1e6 {
			t.Skip()
		}
		// Unparseable discipline specs fall back to FIFO so random bytes
		// still exercise the run path; the parser itself is fuzzed by
		// FuzzParseDiscipline.
		disc, err := ParseDiscipline(discSpec)
		if err != nil {
			disc = Discipline{Kind: DiscFIFO}
		}

		p := Params{
			ArrivalRate:   1, // informational; actual arrivals come from Arrival
			Arrival:       arrival,
			Service:       service,
			ServiceRate:   1,
			SprintRate:    sprintRate,
			Timeout:       timeout,
			BudgetSeconds: budget,
			RefillTime:    refillTime,
			Refill:        sprint.RefillMode(mode % 3),
			Slots:         int(slots%8) + 1,
			NumQueries:    int(queries%64) + 1,
			Warmup:        int(queries % 8),
			Discipline:    disc,
			Seed:          seed,
		}
		if disc.Kind == DiscPS {
			// PS rejects sprinting by design; neutralise the knobs rather
			// than skipping so PS still gets fuzz coverage.
			p.Timeout = -1
			p.BudgetSeconds = 0
		}
		if n := int(servers % 4); n > 1 {
			p.Servers = n
			// The real dispatchers live in a package that imports this
			// one; mirror implementations keep the fuzz in-package.
			if dispPick%2 == 0 {
				p.Dispatch = rrDispatcher{}
			} else {
				p.Dispatch = jsqDispatcher{}
			}
		}

		first, err := Run(p)
		if err != nil {
			t.Fatalf("validated params rejected: %v", err)
		}
		second, err := Run(p)
		if err != nil {
			t.Fatalf("second run errored: %v", err)
		}
		requireResultsIdentical(t, second, first)

		// The retained reference engine models a single-server FIFO
		// queue; only that slice of the parameter space can be diffed
		// against it.
		if disc.Kind == DiscFIFO && p.Servers <= 1 {
			ref, err := runReference(p)
			if err != nil {
				t.Fatalf("reference errored: %v", err)
			}
			requireResultsIdentical(t, first, ref)
		}
	})
}
