package queuesim

// FuzzRunDeterminism shakes the pooled engine with arbitrary
// distribution specs and policy knobs, checking three properties on
// every input: Run never panics on validated parameters, running twice
// with the same seed is bit-identical (determinism), and the pooled
// engine matches the reference implementation bit-for-bit (equivalence).

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/sprint"
)

// fuzzUsableDist vets a parsed distribution for simulation: sampling must
// yield finite non-negative values (service additionally strictly
// positive). NaN samples are excluded because NaN event times make heap
// ordering comparator-dependent — they would diff the two engines'
// internal layouts, not their semantics.
func fuzzUsableDist(d dist.Dist, seed uint64, strictlyPositive bool) bool {
	rng := dist.NewRNG(seed ^ 0xf00d)
	for i := 0; i < 64; i++ {
		v := d.Sample(rng)
		if math.IsNaN(v) || v < 0 {
			return false
		}
		if strictlyPositive && v == 0 {
			return false
		}
	}
	return true
}

func FuzzRunDeterminism(f *testing.F) {
	f.Add(uint64(1), "exp(1.2)", "exp(1)", 0.4, 5.0, 30.0, uint8(0), uint8(0), uint8(40), 2.0)
	f.Add(uint64(7), "pareto(0.4,2.5)", "lognormal(0.8,0.6)", 0.1, 2.0, 10.0, uint8(1), uint8(2), uint8(63), 1.8)
	f.Add(uint64(42), "det(0.8)", "erlang(3,4)", -1.0, 0.0, 0.0, uint8(0), uint8(1), uint8(10), 0.0)
	f.Add(uint64(9), "uniform(0.1,0.9)", "hyperexp(0.7,2.5)", 0.05, 1.0, 5.0, uint8(2), uint8(7), uint8(33), 0.5)

	f.Fuzz(func(t *testing.T, seed uint64, arrSpec, svcSpec string,
		timeout, budget, refillTime float64, mode, slots, queries uint8, sprintRate float64) {
		arrival, err := dist.ParseDist(arrSpec)
		if err != nil {
			t.Skip()
		}
		service, err := dist.ParseDist(svcSpec)
		if err != nil {
			t.Skip()
		}
		if !fuzzUsableDist(arrival, seed, false) || !fuzzUsableDist(service, seed, true) {
			t.Skip()
		}
		if math.IsNaN(timeout) || math.IsInf(timeout, 0) {
			t.Skip()
		}
		if math.IsNaN(budget) || math.IsInf(budget, 0) || budget < 0 || budget > 1e6 {
			t.Skip()
		}
		if math.IsNaN(refillTime) || math.IsInf(refillTime, 0) || refillTime < 0 || refillTime > 1e6 {
			t.Skip()
		}
		if math.IsNaN(sprintRate) || math.IsInf(sprintRate, 0) || sprintRate < 0 || sprintRate > 1e6 {
			t.Skip()
		}

		p := Params{
			ArrivalRate:   1, // informational; actual arrivals come from Arrival
			Arrival:       arrival,
			Service:       service,
			ServiceRate:   1,
			SprintRate:    sprintRate,
			Timeout:       timeout,
			BudgetSeconds: budget,
			RefillTime:    refillTime,
			Refill:        sprint.RefillMode(mode % 3),
			Slots:         int(slots%8) + 1,
			NumQueries:    int(queries%64) + 1,
			Warmup:        int(queries % 8),
			Seed:          seed,
		}

		first, err := Run(p)
		if err != nil {
			t.Fatalf("validated params rejected: %v", err)
		}
		second, err := Run(p)
		if err != nil {
			t.Fatalf("second run errored: %v", err)
		}
		requireResultsIdentical(t, second, first)

		ref, err := runReference(p)
		if err != nil {
			t.Fatalf("reference errored: %v", err)
		}
		requireResultsIdentical(t, first, ref)
	})
}
