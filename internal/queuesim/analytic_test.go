package queuesim

import (
	"math"
	"sort"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/stats"
)

// This file validates the simulator against queueing theory's closed
// forms. With sprinting disabled (negative timeout, zero budget) and
// exponential arrivals and service, the simulator is an M/M/k queue, so
// its mean response time and mean queue length must converge to the
// Erlang-C formulas; and on *every* simulated path — sprinting or not —
// Little's law L = lambda * W must hold as an exact sample-path identity.

// erlangC returns the M/M/k probability of waiting, C(k, a) with offered
// load a = lambda/mu.
func erlangC(k int, a float64) float64 {
	// Sum a^n/n! iteratively to avoid overflow for moderate k.
	term := 1.0 // a^0/0!
	sum := term
	for n := 1; n < k; n++ {
		term *= a / float64(n)
		sum += term
	}
	top := term * a / float64(k) / (1 - a/float64(k)) // a^k/k! * 1/(1-rho)
	return top / (sum + top)
}

// mmkWait returns the analytic mean waiting time Wq and mean response
// time W for an M/M/k queue.
func mmkWait(lambda, mu float64, k int) (wq, w float64) {
	a := lambda / mu
	wq = erlangC(k, a) / (float64(k)*mu - lambda)
	return wq, wq + 1/mu
}

// mmParams builds an M/M/k configuration: exponential arrivals and
// service, sprinting off (negative timeout and zero budget).
func mmParams(lambda, mu float64, k, queries int, seed uint64) Params {
	return Params{
		ArrivalRate:   lambda,
		ArrivalKind:   dist.KindExponential,
		Service:       dist.NewExponential(mu),
		ServiceRate:   mu,
		SprintRate:    2 * mu, // irrelevant: the policy below disables sprinting
		Timeout:       -1,
		BudgetSeconds: 0,
		Slots:         k,
		NumQueries:    queries,
		Warmup:        queries / 10,
		Seed:          seed,
	}
}

// TestMMKAnalyticMeans sweeps a table of (lambda, mu, k) points and
// requires the simulated mean response time and mean queueing time to
// match the M/M/1 / M/M/k closed forms within tolerance. Tolerances
// widen with utilization: autocorrelation near saturation slows the CLT.
func TestMMKAnalyticMeans(t *testing.T) {
	points := []struct {
		lambda, mu float64
		k          int
		tol        float64
	}{
		{lambda: 0.3, mu: 1, k: 1, tol: 0.04},
		{lambda: 0.5, mu: 1, k: 1, tol: 0.05},
		{lambda: 0.7, mu: 1, k: 1, tol: 0.06},
		{lambda: 0.9, mu: 1, k: 1, tol: 0.12},
		{lambda: 0.05, mu: 0.1, k: 1, tol: 0.05}, // slow-server scale (qph territory)
		{lambda: 1.0, mu: 1, k: 2, tol: 0.04},
		{lambda: 1.5, mu: 1, k: 2, tol: 0.06},
		{lambda: 2.8, mu: 1, k: 4, tol: 0.06},
		{lambda: 3.6, mu: 1, k: 4, tol: 0.12},
	}
	for _, pt := range points {
		pt := pt
		const queries = 60000
		res := MustRun(mmParams(pt.lambda, pt.mu, pt.k, queries, 11))
		if res.SprintedCount != 0 || res.SprintSeconds != 0 {
			t.Fatalf("lambda=%v k=%d: sprinting engaged in a disabled-policy run", pt.lambda, pt.k)
		}
		wqAn, wAn := mmkWait(pt.lambda, pt.mu, pt.k)
		w := stats.Mean(res.RTs)
		wq := stats.Mean(res.QueueingTimes)
		if rel := math.Abs(w-wAn) / wAn; rel > pt.tol {
			t.Errorf("lambda=%v mu=%v k=%d: mean RT %.4f vs analytic %.4f (rel err %.3f > %.3f)",
				pt.lambda, pt.mu, pt.k, w, wAn, rel, pt.tol)
		}
		// Mean queue length via L = lambda*W needs an independent W, so
		// compare waiting time directly (equivalent through Little's
		// law, which TestLittlesLawInvariant establishes path-exactly).
		// Wq can be small; bound its error relative to the full W.
		if rel := math.Abs(wq-wqAn) / wAn; rel > pt.tol {
			t.Errorf("lambda=%v mu=%v k=%d: mean wait %.4f vs analytic %.4f (rel err %.3f > %.3f)",
				pt.lambda, pt.mu, pt.k, wq, wqAn, rel, pt.tol)
		}
	}
}

// TestMM1QueueLength checks the time-average number-in-system against
// the M/M/1 closed form L = rho/(1-rho), integrating N(t) from traced
// arrival/departure events — a measurement of queue length itself, not a
// restatement of response time.
func TestMM1QueueLength(t *testing.T) {
	const lambda, mu = 0.6, 1.0
	const queries = 40000
	p := mmParams(lambda, mu, 1, queries, 23)
	p.Warmup = 0 // trace the full horizon so the integral starts empty
	tr := obs.NewRingTracer(8 * queries)
	p.Tracer = tr
	res := MustRun(p)

	integral, horizon := integrateInSystem(t, tr.Events())
	if horizon <= 0 {
		t.Fatal("empty event horizon")
	}
	gotL := integral / horizon
	wantL := (lambda / mu) / (1 - lambda/mu)
	if rel := math.Abs(gotL-wantL) / wantL; rel > 0.06 {
		t.Errorf("time-average queue length %.4f vs analytic %.4f (rel err %.3f)", gotL, wantL, rel)
	}
	_ = res
}

// integrateInSystem sweeps arrival/departure events and returns
// (integral of N(t) dt, horizon). It fails the test if any query departs
// without arriving or the system doesn't end empty.
func integrateInSystem(t *testing.T, events []obs.QueryEvent) (integral, horizon float64) {
	t.Helper()
	type step struct {
		time  float64
		delta int
	}
	var steps []step
	outstanding := make(map[int]float64)
	for _, e := range events {
		switch e.Type {
		case obs.EvArrival:
			steps = append(steps, step{e.Time, +1})
			outstanding[e.Query] = e.Time
		case obs.EvDeparture:
			if _, ok := outstanding[e.Query]; !ok {
				t.Fatalf("query %d departed without arriving", e.Query)
			}
			delete(outstanding, e.Query)
			steps = append(steps, step{e.Time, -1})
		}
	}
	if len(outstanding) != 0 {
		t.Fatalf("%d queries never departed", len(outstanding))
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].time < steps[j].time })
	n := 0
	last := 0.0
	for _, s := range steps {
		integral += float64(n) * (s.time - last)
		n += s.delta
		last = s.time
	}
	if n != 0 {
		t.Fatalf("system not empty at horizon end: n=%d", n)
	}
	return integral, last
}

// TestLittlesLawInvariant asserts Little's law as an exact sample-path
// identity on every simulated run, sprinting or not: with the horizon
// starting and ending empty, the time integral of N(t) equals the sum of
// per-query sojourn times, so L = lambda_hat * W holds to float
// round-off — and the sojourns recovered from trace events must agree
// with the response times the simulator reports.
func TestLittlesLawInvariant(t *testing.T) {
	configs := []struct {
		name string
		mut  func(*Params)
	}{
		{"mm1", func(p *Params) {}},
		{"mm2", func(p *Params) { p.Slots = 2; p.ArrivalRate = 1.1 }},
		{"sprinting", func(p *Params) {
			p.Timeout = 2
			p.BudgetSeconds = 50
			p.RefillTime = 200
		}},
		{"zero timeout sprint-everything", func(p *Params) {
			p.Timeout = 0
			p.BudgetSeconds = 500
			p.RefillTime = 100
		}},
		{"pareto arrivals", func(p *Params) { p.ArrivalKind = dist.KindPareto }},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			p := mmParams(0.6, 1.0, 1, 4000, 31)
			p.Warmup = 0
			cfg.mut(&p)
			tr := obs.NewRingTracer(16 * p.NumQueries)
			p.Tracer = tr
			res := MustRun(p)

			events := tr.Events()
			arrivals := make(map[int]float64)
			var sumSojourn float64
			var count int
			for _, e := range events {
				switch e.Type {
				case obs.EvArrival:
					arrivals[e.Query] = e.Time
				case obs.EvDeparture:
					a, ok := arrivals[e.Query]
					if !ok {
						t.Fatalf("query %d departed without arriving", e.Query)
					}
					sojourn := e.Time - a
					if !stats.ApproxEqual(sojourn, e.Value, 1e-9) {
						t.Fatalf("query %d: reported RT %v != departure-arrival %v", e.Query, e.Value, sojourn)
					}
					sumSojourn += sojourn
					count++
				}
			}
			if count != p.NumQueries {
				t.Fatalf("traced %d departures, expected %d", count, p.NumQueries)
			}

			integral, horizon := integrateInSystem(t, events)
			// Little's law, path-exact: integral == sum of sojourns.
			if !stats.ApproxEqual(integral, sumSojourn, 1e-9) {
				t.Fatalf("Little's law violated: integral N dt = %v, sum sojourns = %v", integral, sumSojourn)
			}
			// And in rate form: L = lambda_hat * W.
			L := integral / horizon
			lambdaHat := float64(count) / horizon
			W := sumSojourn / float64(count)
			if !stats.ApproxEqual(L, lambdaHat*W, 1e-9) {
				t.Fatalf("L=%v != lambda_hat*W=%v", L, lambdaHat*W)
			}
			// The trace-recovered mean must equal the simulator's own
			// report (all queries measured, Warmup=0).
			if !stats.ApproxEqual(W, stats.Mean(res.RTs), 1e-9) {
				t.Fatalf("trace mean RT %v != Result mean RT %v", W, stats.Mean(res.RTs))
			}
		})
	}
}

// TestPSInsensitivityMM1 checks processor sharing against its famous
// insensitivity result: for M/M/1-PS the mean response time equals
// M/M/1-FIFO's 1/(mu - lambda) (PS's mean depends on the service
// distribution only through its mean). Both disciplines are simulated on
// the same seed and compared to the closed form.
func TestPSInsensitivityMM1(t *testing.T) {
	const lambda, mu = 0.7, 1.0
	const queries = 60000
	want := 1 / (mu - lambda)

	pf := mmParams(lambda, mu, 1, queries, 41)
	fifo := MustRun(pf)
	pp := pf
	pp.Discipline = Discipline{Kind: DiscPS}
	ps := MustRun(pp)

	if rel := math.Abs(ps.MeanRT()-want) / want; rel > 0.06 {
		t.Errorf("M/M/1-PS mean RT %.4f vs closed form %.4f (rel err %.3f)", ps.MeanRT(), want, rel)
	}
	if rel := math.Abs(ps.MeanRT()-fifo.MeanRT()) / fifo.MeanRT(); rel > 0.08 {
		t.Errorf("M/M/1-PS mean RT %.4f vs M/M/1-FIFO %.4f (rel err %.3f); insensitivity violated",
			ps.MeanRT(), fifo.MeanRT(), rel)
	}
}

// srptMM1MeanRT numerically evaluates the Schrage–Miller transform-free
// closed form for the M/G/1-SRPT mean response time with exponential
// service at rate mu:
//
//	E[T(x)] = lambda*(m2(x) + x^2*(1-F(x))) / (2*(1-rho(x))^2)
//	        + integral_0^x dt / (1 - rho(t))
//	E[T]    = integral_0^inf E[T(x)] f(x) dx
//
// with rho(x) = lambda*m1(x), m1(x) = int_0^x t f(t) dt and
// m2(x) = int_0^x t^2 f(t) dt, which for f = mu*exp(-mu t) have the
// closed antiderivatives used below. The outer integral and the inner
// waiting integral are evaluated on one shared trapezoidal grid.
func srptMM1MeanRT(lambda, mu float64) float64 {
	upper := 40.0 / mu // exp(-40) tail: negligible mass
	const n = 40000
	h := upper / n
	rho := func(x float64) float64 {
		m1 := (1 - math.Exp(-mu*x)*(1+mu*x)) / mu
		return lambda * m1
	}
	// Cumulative waiting integral W(x) = int_0^x dt/(1-rho(t)).
	wait := 0.0
	mean := 0.0
	prevInv := 1 / (1 - rho(0))
	for i := 1; i <= n; i++ {
		x := float64(i) * h
		inv := 1 / (1 - rho(x))
		wait += 0.5 * (prevInv + inv) * h
		prevInv = inv
		e := math.Exp(-mu * x)
		m2 := (2 - e*(mu*mu*x*x+2*mu*x+2)) / (mu * mu)
		res := lambda * (m2 + x*x*e) / (2 * (1 - rho(x)) * (1 - rho(x)))
		f := mu * e
		mean += (res + wait) * f * h
	}
	return mean
}

// TestSRPTClosedFormMM1 validates the SRPT discipline against the
// Schrage–Miller M/G/1-SRPT mean response time at two utilizations. SRPT
// is the optimality benchmark, so getting its absolute level right (not
// just "better than FIFO") is what makes discipline comparisons
// trustworthy.
func TestSRPTClosedFormMM1(t *testing.T) {
	cases := []struct {
		lambda, mu, tol float64
	}{
		{0.5, 1, 0.04},
		{0.8, 1, 0.06},
	}
	for _, tc := range cases {
		want := srptMM1MeanRT(tc.lambda, tc.mu)
		p := mmParams(tc.lambda, tc.mu, 1, 60000, 59)
		p.Discipline = Discipline{Kind: DiscSRPT}
		res := MustRun(p)
		if res.Preemptions == 0 {
			t.Fatalf("lambda=%v: SRPT run never preempted (vacuous)", tc.lambda)
		}
		if rel := math.Abs(res.MeanRT()-want) / want; rel > tc.tol {
			t.Errorf("lambda=%v: M/M/1-SRPT mean RT %.4f vs Schrage–Miller %.4f (rel err %.3f > %.3f)",
				tc.lambda, res.MeanRT(), want, rel, tc.tol)
		}
		// Sanity: the closed form itself must sit below FIFO's 1/(mu-lambda).
		fifoW := 1 / (tc.mu - tc.lambda)
		if want >= fifoW {
			t.Fatalf("closed form %.4f >= FIFO %.4f; integration bug", want, fifoW)
		}
	}
}
