package queuesim

import (
	"math"

	"mdsprint/internal/obs"
	"mdsprint/internal/sim"
)

// Processor sharing: every query at a server progresses simultaneously at
// rate min(1, Slots/n). Between membership changes the shared rate is
// constant, so the discipline stays event-driven: each server keeps one
// pending departure event for its least-remaining query, and every
// arrival or departure rolls all progress forward at the old rate, then
// recomputes the rate and the next departure. PS never queues (so
// QueueingTimes are zero) and never sprints (validated away: with every
// query always in service there is no "has waited longer than the
// timeout" moment for the mechanism to trigger on).

// psAdmit puts an arriving query straight into service at server s.
func (r *Runner) psAdmit(s int32, qi int32, now float64) {
	r.psAdvance(s, now)
	q := &r.pool[qi]
	q.running = true
	q.started = true
	q.start = now
	q.seg = now
	q.tau = 0
	r.running = append(r.running, qi)
	if r.tr != nil {
		r.emit(obs.EvServiceStart, now, qi, 0)
	}
	r.psReplan(s, now)
}

// psAdvance rolls every active query at server s forward at the sharing
// rate in force since the server's last membership change.
func (r *Runner) psAdvance(s int32, now float64) {
	rate := r.psRate[s]
	for _, ri := range r.running {
		q := &r.pool[ri]
		if q.srv != s {
			continue
		}
		q.tau = math.Min(q.tau+(now-q.seg)*rate/q.service, 1)
		q.seg = now
	}
}

// psReplan recomputes server s's sharing rate after a membership change
// and schedules its next departure (the query with the least remaining
// work). Iteration order over the running set is deterministic, so the
// winner under ties is too.
func (r *Runner) psReplan(s int32, now float64) {
	r.eng.Cancel(r.psEv[s])
	r.psEv[s] = sim.Handle{}
	n := 0
	next := int32(-1)
	best := math.Inf(1)
	for _, ri := range r.running {
		q := &r.pool[ri]
		if q.srv != s {
			continue
		}
		n++
		if rem := (1 - q.tau) * q.service; rem < best {
			best = rem
			next = ri
		}
	}
	if next < 0 {
		r.psRate[s] = 1
		return
	}
	rate := 1.0
	if k := float64(r.slotsPer); float64(n) > k {
		rate = k / float64(n)
	}
	r.psRate[s] = rate
	r.psEv[s] = r.eng.Schedule(now+best/rate, r.cbPSDep, next)
}

// psDepart retires server s's least-remaining query once its processor
// share has carried it to completion.
func (r *Runner) psDepart(qi int32) {
	now := r.eng.Now()
	q := &r.pool[qi]
	s := q.srv
	r.psAdvance(s, now)
	r.psEv[s] = sim.Handle{}
	r.res.Duration = now
	if r.tr != nil {
		r.emit(obs.EvDeparture, now, qi, now-q.arrival)
	}
	for i, ri := range r.running {
		if ri == qi {
			r.running = append(r.running[:i], r.running[i+1:]...)
			break
		}
	}
	q.running = false
	if !q.warm {
		r.res.RTs = append(r.res.RTs, now-q.arrival)
		r.res.QueueingTimes = append(r.res.QueueingTimes, 0)
	}
	r.srvLive[s]--
	r.freeQuery(qi)
	r.psReplan(s, now)
}
