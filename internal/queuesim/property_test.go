package queuesim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"mdsprint/internal/dist"
	"mdsprint/internal/sprint"
)

// TestRandomParamsInvariants fuzzes policy and workload settings and
// checks structural invariants of every run: finite, non-negative
// response times bounded below by the fastest possible processing; FIFO
// dispatch; budget conservation.
func TestRandomParamsInvariants(t *testing.T) {
	f := func(seed uint64, utilRaw, toRaw, budRaw, refRaw, spRaw uint8) bool {
		mu := 0.02
		util := 0.1 + 0.85*float64(utilRaw)/255
		speedup := 1 + 4*float64(spRaw)/255
		p := Params{
			ArrivalRate:   util * mu,
			Service:       dist.LogNormalFromMeanCV(1/mu, 0.4),
			ServiceRate:   mu,
			SprintRate:    speedup * mu,
			Timeout:       float64(toRaw) * 2,
			BudgetSeconds: float64(budRaw) * 5,
			RefillTime:    10 + float64(refRaw)*10,
			NumQueries:    400,
			Warmup:        40,
			Seed:          seed,
		}
		res := MustRun(p)
		if len(res.RTs) != p.NumQueries {
			return false
		}
		for i, rt := range res.RTs {
			if math.IsNaN(rt) || rt <= 0 {
				return false
			}
			// Queueing times are non-negative and below RT.
			if res.QueueingTimes[i] < 0 || res.QueueingTimes[i] > rt {
				return false
			}
		}
		// Budget conservation: consumption within supply (+5% slack
		// for the engage-threshold boundary).
		if res.SprintSeconds > res.BudgetSupply(p)*1.05+1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRTsMonotoneInSprintRate: for a fixed seed, raising the sprint rate
// must never increase mean response time (common random numbers make the
// comparison exact).
func TestRTsMonotoneInSprintRate(t *testing.T) {
	mu := 0.02
	base := Params{
		ArrivalRate: 0.8 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		Timeout:     40, BudgetSeconds: 400, RefillTime: 300,
		NumQueries: 4000, Warmup: 400, Seed: 13,
	}
	prev := math.Inf(1)
	for _, s := range []float64{1.0, 1.3, 1.7, 2.2, 3.0} {
		p := base
		p.SprintRate = s * mu
		rt := MustRun(p).MeanRT()
		if rt > prev*1.002 {
			t.Fatalf("RT rose from %v to %v when speedup increased to %v", prev, rt, s)
		}
		prev = rt
	}
}

// TestMoreBudgetNeverHurts: with a fixed seed, enlarging the budget must
// not increase mean RT.
func TestMoreBudgetNeverHurts(t *testing.T) {
	mu := 0.02
	base := Params{
		ArrivalRate: 0.85 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		SprintRate:  2 * mu,
		Timeout:     30, RefillTime: 400,
		NumQueries: 4000, Warmup: 400, Seed: 17,
	}
	prev := math.Inf(1)
	for _, b := range []float64{0, 50, 150, 400, 1000} {
		p := base
		p.BudgetSeconds = b
		rt := MustRun(p).MeanRT()
		if rt > prev*1.01 {
			t.Fatalf("RT rose from %v to %v when budget grew to %v", prev, rt, b)
		}
		prev = rt
	}
}

// TestDeterministicArrivalOrderPreserved: under deterministic arrivals
// and service, response times are reproducible exactly.
func TestDeterministicReproducibility(t *testing.T) {
	p := Params{
		ArrivalRate: 0.015, ArrivalKind: dist.KindDeterministic,
		Service:     dist.Deterministic{Value: 50},
		ServiceRate: 0.02,
		SprintRate:  0.03, Timeout: 20, BudgetSeconds: 200, RefillTime: 300,
		NumQueries: 500, Seed: 23,
	}
	a := MustRun(p)
	b := MustRun(p)
	for i := range a.RTs {
		if a.RTs[i] != b.RTs[i] {
			t.Fatal("identical params produced different RTs")
		}
	}
}

// TestWindowRefillEndToEnd exercises the paper's refill clause through
// the simulator: with aggressive sprinting, a window-refill budget
// supplies less than a continuous one, so RT is at least as large.
func TestWindowRefillEndToEnd(t *testing.T) {
	mu := 0.02
	base := Params{
		ArrivalRate: 0.85 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		SprintRate:  2 * mu,
		Timeout:     0, BudgetSeconds: 60, RefillTime: 400,
		NumQueries: 6000, Warmup: 600, Seed: 29,
	}
	cont := MustRun(base)
	pw := base
	pw.Refill = sprint.RefillWindow
	win := MustRun(pw)
	if win.SprintSeconds >= cont.SprintSeconds {
		t.Fatalf("window refill supplied %v sprint-seconds vs continuous %v",
			win.SprintSeconds, cont.SprintSeconds)
	}
	if win.MeanRT() < cont.MeanRT()*0.99 {
		t.Fatalf("window refill RT %v below continuous %v", win.MeanRT(), cont.MeanRT())
	}
}

// TestPredictSeedsIndependent: replications use distinct seeds, so the
// pooled sample is genuinely larger (not the same run repeated).
func TestPredictSeedsIndependent(t *testing.T) {
	mu := 0.02
	p := Params{
		ArrivalRate: 0.6 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		Timeout:     -1,
		NumQueries:  500, Warmup: 50, Seed: 31,
	}
	r1 := MustRun(p)
	p2 := p
	p2.Seed = p.Seed + 0x9e3779b97f4a7c15 // Predict's second replication
	r2 := MustRun(p2)
	same := 0
	for i := range r1.RTs {
		if r1.RTs[i] == r2.RTs[i] {
			same++
		}
	}
	if same > len(r1.RTs)/10 {
		t.Fatalf("replications look identical (%d/%d equal RTs)", same, len(r1.RTs))
	}
}

// TestSortedCDFStable ensures Result.RTs ordering is by departure-
// completion order (arrival order for FIFO single slot with uniform
// service this equals arrival order).
func TestRTsCompleteCount(t *testing.T) {
	p := Params{
		ArrivalRate: 0.01,
		Service:     dist.Deterministic{Value: 10},
		ServiceRate: 0.1,
		Timeout:     -1,
		NumQueries:  100, Seed: 37,
	}
	res := MustRun(p)
	if len(res.RTs) != 100 {
		t.Fatalf("got %d RTs", len(res.RTs))
	}
	sorted := append([]float64(nil), res.RTs...)
	sort.Float64s(sorted)
	if sorted[0] < 10 {
		t.Fatalf("fastest RT %v below service time", sorted[0])
	}
}
