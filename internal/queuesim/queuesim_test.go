package queuesim

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/sprint"
	"mdsprint/internal/stats"
	"mdsprint/internal/testbed"
	"mdsprint/internal/workload"
)

func TestValidate(t *testing.T) {
	bad := []Params{
		{},
		{ArrivalRate: 1},
		{ArrivalRate: 1, Service: dist.Deterministic{Value: 1}},
		{ArrivalRate: 1, Service: dist.Deterministic{Value: 1}, ServiceRate: 1, SprintRate: -1},
		{ArrivalRate: 1, Service: dist.Deterministic{Value: 1}, ServiceRate: 1, Warmup: -1},
	}
	for i, p := range bad {
		if _, err := Run(p); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}

// TestMM1 checks the simulator against the closed-form M/M/1 response
// time, the validation the paper reports as 5% median error on classic
// MMK workloads (Section 3.1).
func TestMM1(t *testing.T) {
	mu := 0.1
	for _, rho := range []float64{0.3, 0.5, 0.75, 0.95} {
		p := Params{
			ArrivalRate: rho * mu,
			Service:     dist.NewExponential(mu),
			ServiceRate: mu,
			Timeout:     -1,
			NumQueries:  80000,
			Warmup:      8000,
			Seed:        3,
		}
		res := MustRun(p)
		want := 1 / (mu - p.ArrivalRate)
		if got := res.MeanRT(); math.Abs(got-want)/want > 0.07 {
			t.Errorf("rho=%v: RT %v, want %v", rho, got, want)
		}
	}
}

// TestMM2ErlangC validates the multi-slot path against the M/M/2 closed
// form: P(wait) from the Erlang-C formula, mean wait P_wait/(k*mu-lambda).
func TestMM2ErlangC(t *testing.T) {
	mu := 0.05
	for _, rho := range []float64{0.5, 0.8} {
		lambda := rho * 2 * mu // per-server utilization rho with k=2
		a := lambda / mu
		pWait := (a * a / (2 * (1 - rho))) / (1 + a + a*a/(2*(1-rho)))
		wantWait := pWait / (2*mu - lambda)
		p := Params{
			ArrivalRate: lambda,
			Service:     dist.NewExponential(mu),
			ServiceRate: mu,
			Timeout:     -1,
			Slots:       2,
			NumQueries:  80000,
			Warmup:      8000,
			Seed:        41,
		}
		res := MustRun(p)
		got := stats.Mean(res.QueueingTimes)
		if math.Abs(got-wantWait)/wantWait > 0.08 {
			t.Errorf("rho=%v: M/M/2 wait %v, want %v", rho, got, wantWait)
		}
	}
}

// TestMG1PollaczekKhinchine validates general service (M/G/1): mean wait
// = lambda E[S^2] / (2 (1 - rho)).
func TestMG1PollaczekKhinchine(t *testing.T) {
	mean, cv := 10.0, 0.5
	svc := dist.LogNormalFromMeanCV(mean, cv)
	mu := 1 / mean
	rho := 0.7
	lambda := rho * mu
	p := Params{
		ArrivalRate: lambda,
		Service:     svc,
		ServiceRate: mu,
		Timeout:     -1,
		NumQueries:  80000,
		Warmup:      8000,
		Seed:        5,
	}
	res := MustRun(p)
	es2 := mean * mean * (1 + cv*cv)
	want := lambda * es2 / (2 * (1 - rho))
	if got := stats.Mean(res.QueueingTimes); math.Abs(got-want)/want > 0.08 {
		t.Fatalf("M/G/1 wait %v, want %v", got, want)
	}
}

// TestEquation1MidSprint verifies the core sprint arithmetic with a
// deterministic single query: timeout at 50 s into a 100 s execution with
// speedup 2 departs at 75 s.
func TestEquation1MidSprint(t *testing.T) {
	p := Params{
		ArrivalRate:   1e-5, // one query at a time
		ArrivalKind:   dist.KindDeterministic,
		Service:       dist.Deterministic{Value: 100},
		ServiceRate:   0.01,
		SprintRate:    0.02,
		Timeout:       50,
		BudgetSeconds: 1e9,
		RefillTime:    1,
		NumQueries:    5,
		Seed:          1,
	}
	res := MustRun(p)
	for i, rt := range res.RTs {
		if math.Abs(rt-75) > 1e-6 {
			t.Fatalf("query %d RT %v, want 75 (Eq. 1)", i, rt)
		}
	}
	if res.SprintedCount != len(res.RTs) {
		t.Fatalf("sprinted %d/%d", res.SprintedCount, len(res.RTs))
	}
}

// TestBudgetExhaustionReverts verifies the revert-to-sustained arithmetic:
// sprint from t=0 at speedup 2 with a 20 s budget covers 40% of a 100 s
// job, leaving 60 s at sustained rate: RT = 80 s.
func TestBudgetExhaustionReverts(t *testing.T) {
	p := Params{
		ArrivalRate:   1e-6,
		ArrivalKind:   dist.KindDeterministic,
		Service:       dist.Deterministic{Value: 100},
		ServiceRate:   0.01,
		SprintRate:    0.02,
		Timeout:       0,
		BudgetSeconds: 20,
		RefillTime:    1e12, // effectively no refill
		NumQueries:    1,
		Seed:          1,
	}
	res := MustRun(p)
	if len(res.RTs) != 1 {
		t.Fatalf("got %d results", len(res.RTs))
	}
	if math.Abs(res.RTs[0]-80) > 1e-6 {
		t.Fatalf("RT %v, want 80", res.RTs[0])
	}
}

func TestSprintingReducesRT(t *testing.T) {
	mu := 0.02
	base := Params{
		ArrivalRate: 0.85 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		Timeout:     -1,
		NumQueries:  20000,
		Warmup:      2000,
		Seed:        9,
	}
	off := MustRun(base)
	on := base
	on.SprintRate = 2 * mu
	on.Timeout = 60
	on.BudgetSeconds = 500
	on.RefillTime = 100
	sped := MustRun(on)
	if sped.MeanRT() >= off.MeanRT() {
		t.Fatalf("sprinting did not reduce RT: %v vs %v", sped.MeanRT(), off.MeanRT())
	}
	if sped.SprintedCount == 0 {
		t.Fatal("no sprints occurred")
	}
}

func TestSpeedupBelowOneSlowsSprints(t *testing.T) {
	// A calibrated sprint rate below the service rate expresses
	// net-negative sprints: the whole execution at speedup 0.5 takes
	// twice as long (Equation 2 allows negative x).
	p := Params{
		ArrivalRate:   1e-6,
		ArrivalKind:   dist.KindDeterministic,
		Service:       dist.Deterministic{Value: 100},
		ServiceRate:   0.01,
		SprintRate:    0.005, // speedup 0.5
		Timeout:       0,
		BudgetSeconds: 1e9,
		RefillTime:    1,
		NumQueries:    1,
		Seed:          1,
	}
	res := MustRun(p)
	if math.Abs(res.RTs[0]-200) > 1e-6 {
		t.Fatalf("RT %v, want 200 (speedup 0.5)", res.RTs[0])
	}
	// The arithmetic floor guards degenerate rates.
	p.SprintRate = 1e-9
	res = MustRun(p)
	if math.Abs(res.RTs[0]-1000) > 1e-6 {
		t.Fatalf("RT %v, want 1000 (speedup floored at 0.1)", res.RTs[0])
	}
}

func TestParetoArrivalsHeavierTail(t *testing.T) {
	mu := 0.02
	base := Params{
		ArrivalRate: 0.6 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		Timeout:     -1,
		NumQueries:  30000,
		Warmup:      3000,
		Seed:        11,
	}
	expRes := MustRun(base)
	par := base
	par.ArrivalKind = dist.KindPareto
	parRes := MustRun(par)
	// Heavy-tailed arrivals are burstier: tail response time grows.
	expP99 := stats.Quantile(expRes.RTs, 0.99)
	parP99 := stats.Quantile(parRes.RTs, 0.99)
	if parP99 <= expP99 {
		t.Fatalf("Pareto p99 %v <= exponential p99 %v", parP99, expP99)
	}
}

// TestCrossValidatesTestbed runs the ground-truth testbed with runtime
// effects disabled and the model simulator with the marginal rate: the
// two implementations must agree closely, establishing that model error
// in the experiments comes from the hidden runtime factors, not from
// queueing-logic drift between the two simulators.
func TestCrossValidatesTestbed(t *testing.T) {
	jacobi := workload.MustByName("Jacobi")
	mu := sprint.QPH(51)
	marginal := (mech.DVFS{}).MarginalSpeedup(jacobi)
	for _, util := range []float64{0.5, 0.9} {
		tbCfg := testbed.Config{
			Mix:                   workload.SingleClass(jacobi),
			Mechanism:             mech.DVFS{},
			Policy:                sprint.Policy{Timeout: 60, BudgetSeconds: 400, RefillTime: 200, Speedup: 1e9},
			ArrivalRate:           util * mu,
			NumQueries:            40000,
			Warmup:                4000,
			Seed:                  21,
			DisableRuntimeEffects: true,
		}
		tb := testbed.MustRun(tbCfg)
		qp := Params{
			ArrivalRate:   util * mu,
			Service:       dist.LogNormalFromMeanCV(1/mu, jacobi.ServiceCV),
			ServiceRate:   mu,
			SprintRate:    marginal * mu,
			Timeout:       60,
			BudgetSeconds: 400,
			RefillTime:    200,
			NumQueries:    40000,
			Warmup:        4000,
			Seed:          22,
		}
		qs := MustRun(qp)
		a, b := tb.MeanResponseTime(), qs.MeanRT()
		if math.Abs(a-b)/a > 0.05 {
			t.Errorf("util=%v: testbed RT %v vs queuesim RT %v", util, a, b)
		}
	}
}

func TestPredictPoolsReplications(t *testing.T) {
	mu := 0.02
	p := Params{
		ArrivalRate: 0.7 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		Timeout:     -1,
		NumQueries:  2000,
		Warmup:      200,
		Seed:        31,
	}
	pred, err := Predict(p, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pred.QueriesSimulated != 4*2000 {
		t.Fatalf("pooled %d queries, want 8000", pred.QueriesSimulated)
	}
	if pred.P99RT < pred.P95RT || pred.P95RT < pred.MeanRT*0.3 {
		t.Fatalf("prediction stats inconsistent: %+v", pred)
	}
	// Same seed, different worker counts: identical pooled mean.
	pred2, _ := Predict(p, 4, 4)
	if pred.MeanRT != pred2.MeanRT {
		t.Fatal("Predict not deterministic across worker counts")
	}
}

// TestTickCrossValidation checks the event-driven simulator against the
// Algorithm 1-style tick-stepped reference on identical pre-drawn
// workloads.
func TestTickCrossValidation(t *testing.T) {
	mu := 0.02
	for _, scenario := range []struct {
		name string
		p    Params
	}{
		{"no sprint", Params{
			ArrivalRate: 0.7 * mu, Service: dist.LogNormalFromMeanCV(1/mu, 0.4),
			ServiceRate: mu, Timeout: -1, NumQueries: 3000, Warmup: 300, Seed: 41,
		}},
		{"sprinting", Params{
			ArrivalRate: 0.8 * mu, Service: dist.LogNormalFromMeanCV(1/mu, 0.4),
			ServiceRate: mu, SprintRate: 1.8 * mu, Timeout: 40,
			BudgetSeconds: 300, RefillTime: 150, NumQueries: 3000, Warmup: 300, Seed: 42,
		}},
	} {
		ev := MustRun(scenario.p)
		tk, err := RunTick(scenario.p, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		a, b := ev.MeanRT(), tk.MeanRT()
		if math.Abs(a-b)/a > 0.03 {
			t.Errorf("%s: event %v vs tick %v", scenario.name, a, b)
		}
	}
}

func TestEmpiricalServiceResampling(t *testing.T) {
	// The production path: service times resampled from profiler data.
	samples := []float64{40, 45, 50, 55, 60}
	emp := dist.NewEmpirical(samples)
	p := Params{
		ArrivalRate: 0.5 / 50,
		Service:     emp,
		ServiceRate: 1.0 / 50,
		Timeout:     -1,
		NumQueries:  5000,
		Warmup:      500,
		Seed:        51,
	}
	res := MustRun(p)
	if res.MeanRT() < 50 {
		t.Fatalf("mean RT %v below mean service 50", res.MeanRT())
	}
}

func TestZeroQueries(t *testing.T) {
	p := Params{ArrivalRate: 1, Service: dist.Deterministic{Value: 1}, ServiceRate: 1}
	p.NumQueries = 0
	// withDefaults turns 0 into 1000, so ask for explicit tiny run.
	p.NumQueries = 1
	res := MustRun(p)
	if len(res.RTs) != 1 {
		t.Fatalf("got %d RTs", len(res.RTs))
	}
}

func BenchmarkRun1000Queries(b *testing.B) {
	mu := 0.02
	p := Params{
		ArrivalRate: 0.75 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		SprintRate:  1.5 * mu,
		Timeout:     60, BudgetSeconds: 300, RefillTime: 200,
		NumQueries: 1000, Warmup: 100,
	}
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i)
		MustRun(p)
	}
}
