package queuesim

import (
	"testing"

	"mdsprint/internal/dist"
)

// benchParams is the Quick-scale workload used by `make bench-sim`: a
// moderately loaded single-slot server with sprinting, timeouts and a
// windowed budget, so every event type (arrival, timeout, depart,
// budget-empty) is exercised on the hot path.
func benchParams() Params {
	mu := 0.02
	return Params{
		ArrivalRate: 0.75 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		SprintRate:  1.5 * mu,
		Timeout:     60, BudgetSeconds: 300, RefillTime: 200,
		NumQueries: 1000, Warmup: 100,
		Seed: 11,
	}
}

// BenchmarkSimRun measures the public single-run entry point (pooled
// runner behind a sync.Pool; allocates only the returned Result).
func BenchmarkSimRun(b *testing.B) {
	p := benchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i) + 1
		if _, err := Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRunInto measures the reusable-runner path: steady state
// after the first iteration, zero allocations per run.
func BenchmarkSimRunInto(b *testing.B) {
	p := benchParams()
	r := NewRunner()
	var out Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i) + 1
		if err := r.RunInto(p, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRunReference measures the retired heap-and-closure engine
// on the same workload, the baseline the pooled runner is diffed against.
func BenchmarkSimRunReference(b *testing.B) {
	p := benchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i) + 1
		if _, err := runReference(p); err != nil {
			b.Fatal(err)
		}
	}
}

// benchReps matches the replication count a calibration probe issues per
// candidate policy.
const benchReps = 8

// BenchmarkSimRunReps measures the replication loop: one pooled runner
// reused across reps, results written into a reusable slice — zero
// allocations after the first iteration sizes the result vectors.
func BenchmarkSimRunReps(b *testing.B) {
	p := benchParams()
	out := make([]Result, benchReps)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i)*seedStride + 1
		if err := RunRepsInto(p, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRunRepsReference replays the same replication schedule
// through the reference engine: fresh state, closures and slices per rep.
func BenchmarkSimRunRepsReference(b *testing.B) {
	p := benchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := uint64(i)*seedStride + 1
		rp := p.Canonical()
		for rep := 0; rep < benchReps; rep++ {
			rp.Seed = repSeed(base, rep)
			if _, err := runReference(rp); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimRunRepsSRPT replays the replication loop with the
// preemptive SRPT discipline: same workload, but every dispatch decision
// goes through the intrusive index heap and long jobs get preempted, so
// this row prices the ordered-ready-queue machinery against the FIFO
// ring (BenchmarkSimRunReps). Like the FIFO row it reuses the result
// slice, so both report zero steady-state allocations.
func BenchmarkSimRunRepsSRPT(b *testing.B) {
	p := benchParams()
	p.Discipline = Discipline{Kind: DiscSRPT}
	out := make([]Result, benchReps)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i)*seedStride + 1
		if err := RunRepsInto(p, out); err != nil {
			b.Fatal(err)
		}
	}
}
