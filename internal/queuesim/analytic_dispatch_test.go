package queuesim_test

// Analytic validation of the multi-queue dispatchers. This file lives in
// the external test package so it can drive the real implementations in
// internal/queuesim/dispatch (which imports queuesim — an in-package
// test would cycle).

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/queuesim/dispatch"
)

// mmDispatchParams builds a no-sprint M/M/k-style configuration fanned
// across servers by d.
func mmDispatchParams(lambda, mu float64, servers int, d queuesim.Dispatcher, queries int, seed uint64) queuesim.Params {
	return queuesim.Params{
		ArrivalRate:   lambda,
		Service:       dist.NewExponential(mu),
		ServiceRate:   mu,
		Timeout:       -1,
		BudgetSeconds: 0,
		Servers:       servers,
		Dispatch:      d,
		NumQueries:    queries,
		Warmup:        queries / 10,
		Seed:          seed,
	}
}

// erlangC2 is the M/M/2 probability of waiting (Erlang-C at k=2,
// offered load a = lambda/mu).
func erlangC2(a float64) float64 {
	sum := 1.0 + a
	top := a * a / 2 / (1 - a/2)
	return top / (sum + top)
}

// mm2MeanRT is the analytic M/M/2 mean response time.
func mm2MeanRT(lambda, mu float64) float64 {
	return erlangC2(lambda/mu)/(2*mu-lambda) + 1/mu
}

// TestJSQ2MM2Bounds checks join-shortest-queue over two servers against
// its published bracketing: a central-queue M/M/2 (perfect, commitment-
// free JSQ) is a lower bound on the mean response time, and a uniform
// random Bernoulli split into two M/M/1s an upper bound — with JSQ-2
// expected to land much closer to the M/M/2 side.
func TestJSQ2MM2Bounds(t *testing.T) {
	const lambda, mu = 1.5, 1.0
	const queries = 60000
	lower := mm2MeanRT(lambda, mu)   // 2.286 at rho=0.75
	upper := 1 / (mu - lambda/2)     // split M/M/1: 4.0
	mid := lower + 0.5*(upper-lower) // JSQ must beat the halfway point

	res := queuesim.MustRun(mmDispatchParams(lambda, mu, 2, dispatch.JSQ(), queries, 71))
	w := res.MeanRT()
	if w < lower*(1-0.03) {
		t.Errorf("JSQ-2 mean RT %.4f below the M/M/2 lower bound %.4f", w, lower)
	}
	if w > upper*(1+0.03) {
		t.Errorf("JSQ-2 mean RT %.4f above the random-split upper bound %.4f", w, upper)
	}
	if w > mid {
		t.Errorf("JSQ-2 mean RT %.4f worse than halfway to the random split (%.4f); dispatcher is not load-aware", w, mid)
	}
}

// TestRandomSplitClosedForm: rnd(1) is a Bernoulli split of the Poisson
// arrival stream, and a Bernoulli split of a Poisson process is Poisson —
// so each server is exactly an independent M/M/1 at lambda/2 and the
// closed form 1/(mu - lambda/2) applies exactly, not as a bound.
func TestRandomSplitClosedForm(t *testing.T) {
	const lambda, mu = 1.2, 1.0
	const queries = 60000
	want := 1 / (mu - lambda/2) // 2.5 at per-server rho=0.6

	rnd1, err := dispatch.RandomD(1)
	if err != nil {
		t.Fatal(err)
	}
	res := queuesim.MustRun(mmDispatchParams(lambda, mu, 2, rnd1, queries, 83))
	if rel := math.Abs(res.MeanRT()-want) / want; rel > 0.05 {
		t.Errorf("rnd(1) split mean RT %.4f vs split-M/M/1 closed form %.4f (rel err %.3f)",
			res.MeanRT(), want, rel)
	}
}

// TestRoundRobinSplitBounds: round-robin alternation thins the Poisson
// stream into per-server Erlang-2 arrivals — strictly less bursty than
// Poisson, so the mean response time must land strictly below the
// random-split M/M/1 value (the degenerate upper bound rnd(1) attains)
// while staying above the central-queue M/M/2 lower bound.
func TestRoundRobinSplitBounds(t *testing.T) {
	const lambda, mu = 1.2, 1.0
	const queries = 60000
	lower := mm2MeanRT(lambda, mu)
	upper := 1 / (mu - lambda/2)

	res := queuesim.MustRun(mmDispatchParams(lambda, mu, 2, dispatch.RoundRobin(), queries, 97))
	w := res.MeanRT()
	if w <= lower*(1-0.03) {
		t.Errorf("round-robin mean RT %.4f below the M/M/2 lower bound %.4f", w, lower)
	}
	if w >= upper {
		t.Errorf("round-robin mean RT %.4f not below the random-split value %.4f (E2 arrivals should help)", w, upper)
	}
}

// TestLeastWorkBeatsJSQUnderVariance: with high-variance service times,
// queue length is a poor proxy for backlog; least-work-left sees the
// actual remaining seconds and must not do worse than JSQ by more than
// noise (and random-d(2) must land between random and JSQ).
func TestLeastWorkBeatsJSQUnderVariance(t *testing.T) {
	const queries = 40000
	service := dist.MustParseDist("lognormal(1,2)") // mean 1, cv 2
	base := queuesim.Params{
		ArrivalRate:   1.4,
		Service:       service,
		ServiceRate:   1,
		Timeout:       -1,
		BudgetSeconds: 0,
		Servers:       2,
		NumQueries:    queries,
		Warmup:        queries / 10,
		Seed:          13,
	}
	run := func(d queuesim.Dispatcher) float64 {
		p := base
		p.Dispatch = d
		return queuesim.MustRun(p).MeanRT()
	}
	rnd1, _ := dispatch.RandomD(1)
	rnd2, _ := dispatch.RandomD(2)
	wRand := run(rnd1)
	wRnd2 := run(rnd2)
	wJSQ := run(dispatch.JSQ())
	wLWL := run(dispatch.LeastWork())
	if wLWL > wJSQ*1.05 {
		t.Errorf("least-work-left %.4f much worse than JSQ %.4f under cv=2 service", wLWL, wJSQ)
	}
	if wJSQ >= wRand {
		t.Errorf("JSQ %.4f not better than random %.4f", wJSQ, wRand)
	}
	// Power of two choices captures most of JSQ's gain over random.
	if wRnd2 >= wRand {
		t.Errorf("rnd(2) %.4f not better than random %.4f", wRnd2, wRand)
	}
}
