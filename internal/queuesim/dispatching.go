package queuesim

import "math"

// This file is the simulator's half of the multi-queue dispatching layer.
// With Params.Servers > 1 the runner keeps one ready queue and Slots
// execution slots per server, all sharing a single sprint budget
// Accountant, and asks a Dispatcher to route each arrival. The dispatcher
// implementations (JSQ, least-work-left, round-robin, random-d) live in
// internal/queuesim/dispatch; this package only defines the contract so
// the dependency points outward.

// ServerView is the read-only load picture a Dispatcher decides from.
// The Runner implements it; Pick must not retain the view beyond the
// call.
type ServerView interface {
	// NumServers returns the number of per-server queues, k.
	NumServers() int
	// QueueLen returns the number of queries at server s, queued plus
	// in service.
	QueueLen(s int) int
	// WorkLeft returns the remaining service-time seconds at server s:
	// the unserved work of its queued queries plus the unfinished
	// remainder of its running ones, at sustained rate.
	WorkLeft(s int) float64
}

// DispatchState is the per-run mutable state a Dispatcher may use. The
// runner owns it and resets it at the start of every run, so stateful
// policies (round-robin's cursor, random-d's candidate draws) stay
// deterministic under the run's seed and dispatcher values themselves can
// be stateless, immutable and safely shared across concurrent runners.
type DispatchState struct {
	// RNG is the run's main random stream (shared with arrival and
	// service sampling, so dispatch draws are part of the run's
	// deterministic event sequence).
	RNG rngIntn
	// Cursor is free for cyclic policies; zero at run start.
	Cursor int
}

// rngIntn is the slice of dist.RNG a dispatcher may draw from.
type rngIntn interface {
	// Intn returns a uniform int in [0, n).
	Intn(n int) int
}

// Dispatcher routes each arrival to one of k per-server queues. Pick
// returns the chosen server index in [0, view.NumServers()); an
// out-of-range pick panics the run. Implementations must be stateless
// (all mutable state lives in DispatchState) and must encode every
// behaviour-affecting parameter in Canon, which the sweep engine
// fingerprints for memoization.
type Dispatcher interface {
	// Canon returns the dispatcher's canonical spec string, e.g. "jsq"
	// or "rnd(2)".
	Canon() string
	// Pick chooses the server for the arriving query.
	Pick(view ServerView, state *DispatchState) int
}

// NumServers implements ServerView: the number of per-server queues.
func (r *Runner) NumServers() int { return r.servers }

// QueueLen implements ServerView: queries at server s, queued plus in
// service.
func (r *Runner) QueueLen(s int) int { return int(r.srvLive[s]) }

// WorkLeft implements ServerView: remaining service seconds at server s
// at sustained rate, summing queued queries' unserved work and running
// queries' unfinished remainder.
func (r *Runner) WorkLeft(s int) float64 {
	now := r.eng.Now()
	sum := 0.0
	if r.ordered {
		for _, qi := range r.heaps[s].idx {
			q := &r.pool[qi]
			sum += (1 - q.tau) * q.service
		}
	} else if r.disc.Kind != DiscPS {
		rq := &r.queues[s]
		for i := 0; i < rq.n; i++ {
			q := &r.pool[rq.buf[(rq.head+i)%len(rq.buf)]]
			sum += (1 - q.tau) * q.service
		}
	}
	si := int32(s)
	for _, ri := range r.running {
		q := &r.pool[ri]
		if q.srv != si {
			continue
		}
		if r.disc.Kind == DiscPS {
			tau := math.Min(q.tau+(now-q.seg)*r.psRate[s]/q.service, 1)
			sum += (1 - tau) * q.service
		} else {
			sum += (1 - r.progress(q, now)) * q.service
		}
	}
	return sum
}
