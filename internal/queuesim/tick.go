package queuesim

import (
	"math"

	"mdsprint/internal/dist"
	"mdsprint/internal/sprint"
)

// RunTick is a tick-stepped reference implementation of the same queue
// semantics as Run, in the style of the paper's Algorithm 1 (which
// advances a fine-resolution clock one step at a time). It exists to
// cross-validate the event-driven simulator — the two must agree to within
// tick resolution — and to quantify the cost of tick stepping in the
// ablation benchmarks. Single execution slot only, like Algorithm 1.
//
// step is the clock resolution in seconds (Algorithm 1 uses 1e-6; tests
// use coarser steps since error is O(step) per query).
func RunTick(p Params, step float64) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	if step <= 0 {
		step = 0.01
	}
	total := p.NumQueries + p.Warmup
	res := &Result{}
	if total == 0 {
		return res, nil
	}

	// Pre-draw arrivals and service times with the same RNG call order
	// as the event-driven simulator (interarrival then service, per
	// query), so both see identical workloads for a given seed.
	rng := dist.NewRNG(p.Seed)
	arr := p.Arrival
	if arr == nil {
		arr = dist.ForRate(p.ArrivalKind, p.ArrivalRate)
	}
	arrivals := make([]float64, total)
	services := make([]float64, total)
	t := 0.0
	for i := 0; i < total; i++ {
		t += arr.Sample(rng)
		arrivals[i] = t
		services[i] = p.Service.Sample(rng)
	}

	speedup := p.speedup()
	enabled := p.sprintingEnabled()
	budget := p.BudgetSeconds
	refill := refillRate(p)

	type tq struct {
		idx      int
		start    float64
		progress float64
		sprint   bool
		sprinted bool
		pending  bool
		timedOut bool
	}
	var queue []*tq
	var run *tq
	next := 0
	done := 0
	clock := 0.0

	for done < total {
		clock += step
		// Admit arrivals.
		for next < total && arrivals[next] <= clock {
			queue = append(queue, &tq{idx: next})
			next++
		}
		// Budget accrual and drain over this tick.
		delta := refill * step
		if run != nil && run.sprint {
			delta -= step
		}
		budget += delta
		if budget > p.BudgetSeconds {
			budget = p.BudgetSeconds
		}
		if budget <= 0 {
			budget = 0
			if run != nil && run.sprint {
				run.sprint = false
			}
		}
		// Timeout interrupts.
		if enabled {
			for _, q := range queue {
				if !q.timedOut && arrivals[q.idx]+p.Timeout <= clock {
					q.timedOut = true
					q.pending = true
				}
			}
			if run != nil && !run.timedOut && arrivals[run.idx]+p.Timeout <= clock {
				run.timedOut = true
				if !run.sprint && budget >= sprint.MinEngageSeconds {
					run.sprint = true
					run.sprinted = true
				}
			}
		}
		// Dispatch.
		if run == nil && len(queue) > 0 {
			run = queue[0]
			queue = queue[1:]
			run.start = clock
			if run.pending && enabled && budget >= sprint.MinEngageSeconds {
				run.sprint = true
				run.sprinted = true
			}
		}
		// Execute one tick.
		if run != nil {
			rate := 1.0
			if run.sprint {
				rate = speedup
			}
			run.progress += step * rate / services[run.idx]
			if run.progress >= 1 {
				if run.idx >= p.Warmup {
					res.RTs = append(res.RTs, clock-arrivals[run.idx])
					res.QueueingTimes = append(res.QueueingTimes, run.start-arrivals[run.idx])
					if run.sprinted {
						res.SprintedCount++
					}
				}
				run = nil
				done++
			}
		}
		if math.IsInf(clock, 0) {
			break
		}
	}
	return res, nil
}
