package queuesim

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/stats"
)

// twoClassParams builds a bimodal system: frequent short queries and rare
// long ones, each with its own sprint clause.
func twoClassParams() MultiParams {
	return MultiParams{
		ArrivalRate: 0.01,
		Classes: []ClassParams{
			{
				Name: "short", Weight: 0.8,
				Service:     dist.LogNormalFromMeanCV(20, 0.3),
				ServiceRate: 1.0 / 20,
				SprintRate:  2.0 / 20,
				Timeout:     30,
			},
			{
				Name: "long", Weight: 0.2,
				Service:     dist.LogNormalFromMeanCV(200, 0.3),
				ServiceRate: 1.0 / 200,
				SprintRate:  3.0 / 200,
				Timeout:     100,
			},
		},
		BudgetSeconds: 500,
		RefillTime:    300,
		NumQueries:    8000,
		Warmup:        800,
		Seed:          5,
	}
}

func TestMultiValidation(t *testing.T) {
	bad := []MultiParams{
		{},
		{ArrivalRate: 1},
		{ArrivalRate: 1, Classes: []ClassParams{{Weight: 1}}},
		{ArrivalRate: 1, Classes: []ClassParams{
			{Weight: 0.5, Service: dist.Deterministic{Value: 1}, ServiceRate: 1},
		}},
	}
	for i, p := range bad {
		if _, err := RunMulti(p); err == nil {
			t.Errorf("params %d accepted", i)
		}
	}
}

func TestMultiClassSharesAndRecords(t *testing.T) {
	res, err := RunMulti(twoClassParams())
	if err != nil {
		t.Fatal(err)
	}
	nShort, nLong := len(res.ByClass["short"]), len(res.ByClass["long"])
	if nShort+nLong != len(res.RTs) {
		t.Fatalf("per-class RTs (%d+%d) != total %d", nShort, nLong, len(res.RTs))
	}
	frac := float64(nShort) / float64(len(res.RTs))
	if math.Abs(frac-0.8) > 0.03 {
		t.Fatalf("short-class fraction %v, want ~0.8", frac)
	}
	if res.MeanRTOf("long") <= res.MeanRTOf("short") {
		t.Fatal("long class should have larger response times")
	}
}

func TestMultiClassPerClassSprintRates(t *testing.T) {
	// With an effectively unlimited budget and timeout 0 for both
	// classes, each class's processing time reflects its own speedup.
	p := twoClassParams()
	p.BudgetSeconds = 1e12
	p.RefillTime = 1
	p.ArrivalRate = 0.001 // light load: RT ~= processing time
	for i := range p.Classes {
		p.Classes[i].Timeout = 0
	}
	res, err := RunMulti(p)
	if err != nil {
		t.Fatal(err)
	}
	// short: speedup 2 on mean 20 -> ~10; long: speedup 3 on 200 -> ~67.
	if got := res.MeanRTOf("short"); math.Abs(got-10)/10 > 0.1 {
		t.Fatalf("short sprinted RT %v, want ~10", got)
	}
	if got := res.MeanRTOf("long"); math.Abs(got-200.0/3)/(200.0/3) > 0.1 {
		t.Fatalf("long sprinted RT %v, want ~%v", got, 200.0/3)
	}
}

func TestMultiClassSelectiveSprinting(t *testing.T) {
	// Disabling the short class's sprints must leave its RT at the
	// sustained scale while the long class still accelerates.
	p := twoClassParams()
	p.BudgetSeconds = 1e12
	p.RefillTime = 1
	p.ArrivalRate = 0.001
	p.Classes[0].Timeout = -1 // short never sprints
	p.Classes[1].Timeout = 0
	res, err := RunMulti(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MeanRTOf("short"); math.Abs(got-20)/20 > 0.1 {
		t.Fatalf("short unsprinted RT %v, want ~20", got)
	}
	if got := res.MeanRTOf("long"); got > 80 {
		t.Fatalf("long sprinted RT %v, want well below 200", got)
	}
}

func TestMultiClassSharedBudget(t *testing.T) {
	// A tight shared budget: sprint-seconds consumed must respect the
	// shared supply even with two classes competing.
	p := twoClassParams()
	p.BudgetSeconds = 100
	p.RefillTime = 1e12
	res, err := RunMulti(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.SprintSeconds > p.BudgetSeconds*1.05 {
		t.Fatalf("consumed %v sprint-seconds of a %v budget", res.SprintSeconds, p.BudgetSeconds)
	}
}

func TestMultiClassDegeneratesToSingle(t *testing.T) {
	// One class with weight 1 must match the single-class simulator on
	// summary statistics (same seeds give different streams because the
	// multi-class path draws a class index, so compare distributions).
	mu := 0.02
	svc := dist.LogNormalFromMeanCV(1/mu, 0.3)
	single := MustRun(Params{
		ArrivalRate: 0.75 * mu, Service: svc, ServiceRate: mu,
		SprintRate: 1.5 * mu, Timeout: 60, BudgetSeconds: 300, RefillTime: 200,
		NumQueries: 30000, Warmup: 3000, Seed: 9,
	})
	multi, err := RunMulti(MultiParams{
		ArrivalRate: 0.75 * mu,
		Classes: []ClassParams{{
			Name: "only", Weight: 1, Service: svc, ServiceRate: mu,
			SprintRate: 1.5 * mu, Timeout: 60,
		}},
		BudgetSeconds: 300, RefillTime: 200,
		NumQueries: 30000, Warmup: 3000, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := stats.Mean(single.RTs), stats.Mean(multi.RTs)
	if math.Abs(a-b)/a > 0.05 {
		t.Fatalf("single %v vs multi %v mean RT", a, b)
	}
}
