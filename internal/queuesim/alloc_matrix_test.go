package queuesim_test

// The discipline × dispatcher allocation matrix: selecting any queueing
// discipline or any multi-queue dispatcher must keep a warmed RunInto at
// zero steady-state heap allocations — the heap ready-queue, the SERPT
// prediction stream, processor sharing's replan cycle, and every real
// dispatcher's Pick included. This lives in the external test package so
// the matrix exercises the actual internal/queuesim/dispatch
// implementations rather than in-package mirrors.

import (
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/queuesim/dispatch"
)

// matrixParams mirrors allocParams: a tight refilling budget that
// exercises arrivals, timeouts, engages, exhaustion, refills and
// departures in 800 queries.
func matrixParams() queuesim.Params {
	return queuesim.Params{
		ArrivalRate:   9,
		ArrivalKind:   dist.KindPareto,
		Service:       dist.NewExponential(10),
		ServiceRate:   10,
		SprintRate:    20,
		Timeout:       0.05,
		BudgetSeconds: 2,
		RefillTime:    40,
		NumQueries:    800,
		Seed:          3,
	}
}

func TestDisciplineDispatchZeroAllocsMatrix(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	mustRnd := func(d int) queuesim.Dispatcher {
		r, err := dispatch.RandomD(d)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	dispatchers := []struct {
		name string
		d    queuesim.Dispatcher // nil = single server
	}{
		{"single", nil},
		{"jsq", dispatch.JSQ()},
		{"lwl", dispatch.LeastWork()},
		{"rr", dispatch.RoundRobin()},
		{"rnd2", mustRnd(2)},
	}
	disciplines := []string{"fifo", "lifo", "srpt", "serpt(0.3)", "ps"}

	for _, ds := range dispatchers {
		for _, spec := range disciplines {
			ds, spec := ds, spec
			t.Run(ds.name+"/"+spec, func(t *testing.T) {
				p := matrixParams()
				p.Discipline = queuesim.MustParseDiscipline(spec)
				if p.Discipline.Kind == queuesim.DiscPS {
					// PS rejects sprinting; the matrix still pins its
					// event-driven sharing cycle at zero allocations.
					p.Timeout = -1
					p.BudgetSeconds = 0
				}
				if ds.d != nil {
					p.Servers = 2
					p.Dispatch = ds.d
				}
				r := queuesim.NewRunner()
				var res queuesim.Result
				for i := 0; i < 3; i++ {
					if err := r.RunInto(p, &res); err != nil {
						t.Fatal(err)
					}
				}
				allocs := testing.AllocsPerRun(10, func() {
					if err := r.RunInto(p, &res); err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Fatalf("steady-state RunInto allocated %.1f objects per run with discipline=%s dispatch=%s, want 0",
						allocs, spec, ds.name)
				}
			})
		}
	}
}
