package dispatch

// Unit tests for the dispatcher policies against a scripted ServerView:
// pick semantics, tie-breaks, the rnd(d) distinct-sampling rejection
// loop, and the Parse/Canon spec grammar.

import (
	"strings"
	"testing"

	"mdsprint/internal/queuesim"
)

// fakeView scripts per-server queue lengths and work totals.
type fakeView struct {
	lens []int
	work []float64
}

func (v fakeView) NumServers() int        { return len(v.lens) }
func (v fakeView) QueueLen(s int) int     { return v.lens[s] }
func (v fakeView) WorkLeft(s int) float64 { return v.work[s] }

// seqIntn replays a scripted sequence of Intn results (cycling), so the
// rejection-sampling path is deterministic under test.
type seqIntn struct {
	vals []int
	i    int
}

func (r *seqIntn) Intn(n int) int {
	v := r.vals[r.i%len(r.vals)] % n
	r.i++
	return v
}

func TestJSQPicksShortestLowestIndex(t *testing.T) {
	var st queuesim.DispatchState
	v := fakeView{lens: []int{3, 1, 2, 1}}
	if got := JSQ().Pick(v, &st); got != 1 {
		t.Fatalf("JSQ picked %d, want 1 (shortest, lowest index on tie)", got)
	}
	if got := JSQ().Pick(fakeView{lens: []int{2, 2, 2}}, &st); got != 0 {
		t.Fatalf("JSQ all-equal picked %d, want 0", got)
	}
}

func TestLeastWorkPicksMinWork(t *testing.T) {
	var st queuesim.DispatchState
	// Queue lengths would say server 1; work says server 2.
	v := fakeView{lens: []int{3, 1, 2}, work: []float64{9, 5, 0.5}}
	if got := LeastWork().Pick(v, &st); got != 2 {
		t.Fatalf("LWL picked %d, want 2 (least work)", got)
	}
	if got := LeastWork().Pick(fakeView{lens: []int{1, 1}, work: []float64{4, 4}}, &st); got != 0 {
		t.Fatalf("LWL tie picked %d, want 0", got)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	var st queuesim.DispatchState
	v := fakeView{lens: []int{0, 0, 0}}
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := RoundRobin().Pick(v, &st); got != w {
			t.Fatalf("pick %d: got server %d, want %d", i, got, w)
		}
	}
}

func TestRandomDSamplesDistinct(t *testing.T) {
	d, err := RandomD(2)
	if err != nil {
		t.Fatal(err)
	}
	// RNG yields 1, 1 (duplicate, rejected), then 3: candidates {1, 3};
	// server 3 has the shorter queue.
	st := queuesim.DispatchState{RNG: &seqIntn{vals: []int{1, 1, 3}}}
	v := fakeView{lens: []int{0, 5, 0, 2}}
	if got := d.Pick(v, &st); got != 3 {
		t.Fatalf("rnd(2) picked %d, want 3 (shorter of candidates {1,3})", got)
	}
}

func TestRandomDTieBreaksLowestIndex(t *testing.T) {
	d, err := RandomD(2)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates 2 then 1, equal lengths: lowest index wins.
	st := queuesim.DispatchState{RNG: &seqIntn{vals: []int{2, 1}}}
	v := fakeView{lens: []int{0, 4, 4}}
	if got := d.Pick(v, &st); got != 1 {
		t.Fatalf("rnd(2) tie picked %d, want 1 (lowest candidate index)", got)
	}
}

func TestRandomDDegeneratesToJSQ(t *testing.T) {
	d, err := RandomD(8)
	if err != nil {
		t.Fatal(err)
	}
	// d >= k: no sampling, straight JSQ (no RNG needed).
	var st queuesim.DispatchState
	v := fakeView{lens: []int{2, 0, 1}}
	if got := d.Pick(v, &st); got != 1 {
		t.Fatalf("rnd(8) over 3 servers picked %d, want 1 (JSQ)", got)
	}
}

func TestRandomDRange(t *testing.T) {
	for _, bad := range []int{0, -1, MaxChoices + 1} {
		if _, err := RandomD(bad); err == nil {
			t.Errorf("RandomD(%d) accepted, want error", bad)
		}
	}
	if _, err := RandomD(MaxChoices); err != nil {
		t.Errorf("RandomD(MaxChoices) rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, spec := range []string{"jsq", "lwl", "rr", "rnd(1)", "rnd(2)", "rnd(16)"} {
		d, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if d.Canon() != spec {
			t.Errorf("Parse(%q).Canon() = %q, want round-trip", spec, d.Canon())
		}
	}
	// Case and whitespace insensitivity.
	if d := MustParse(" JSQ "); d.Canon() != "jsq" {
		t.Errorf("MustParse(\" JSQ \") = %q", d.Canon())
	}
	if d := MustParse("RND( 3 )"); d.Canon() != "rnd(3)" {
		t.Errorf("MustParse(\"RND( 3 )\") = %q", d.Canon())
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "pod", "rnd", "rnd()", "rnd(x)", "rnd(0)", "rnd(17)", "rnd(2",
		"jsq(1)", "lwl()", "rr(2)",
	} {
		if d, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) = %v, want error", spec, d.Canon())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustParse on a bad spec did not panic")
		}
		if !strings.Contains(r.(error).Error(), "unknown dispatcher") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	MustParse("nope")
}
