// Package dispatch implements the multi-queue dispatching policies the
// simulator's Servers > 1 mode routes arrivals with: join-shortest-queue,
// least-work-left, round-robin and power-of-d-choices (random-d). These
// are the policies the dispatching literature compares under exactly the
// heavy-tailed workloads the sprinting model cares about; queuesim keeps
// per-server queues and a shared sprint budget, this package only decides
// which queue an arrival joins.
//
// Every dispatcher value is stateless and immutable — cyclic cursors and
// random draws live in the runner-owned queuesim.DispatchState — so one
// value can be shared across concurrent runners and memoized by its
// Canon() spec string. Parse accepts the same grammar Canon emits:
// "jsq", "lwl", "rr" and "rnd(d)".
package dispatch

import (
	"fmt"
	"strconv"
	"strings"

	"mdsprint/internal/queuesim"
)

// MaxChoices bounds random-d's candidate count; power-of-d gains flatten
// well before this, and the bound keeps the sampling scratch on the
// stack.
const MaxChoices = 16

// jsq joins the shortest queue (fewest resident queries), breaking ties
// toward the lowest server index.
type jsq struct{}

// JSQ returns the join-shortest-queue dispatcher.
func JSQ() queuesim.Dispatcher { return jsq{} }

// Canon implements queuesim.Dispatcher.
func (jsq) Canon() string { return "jsq" }

// Pick implements queuesim.Dispatcher.
func (jsq) Pick(v queuesim.ServerView, _ *queuesim.DispatchState) int {
	best := 0
	bestLen := v.QueueLen(0)
	for s := 1; s < v.NumServers(); s++ {
		if l := v.QueueLen(s); l < bestLen {
			best, bestLen = s, l
		}
	}
	return best
}

// lwl joins the queue with the least unfinished work (remaining service
// seconds), breaking ties toward the lowest server index.
type lwl struct{}

// LeastWork returns the least-work-left dispatcher.
func LeastWork() queuesim.Dispatcher { return lwl{} }

// Canon implements queuesim.Dispatcher.
func (lwl) Canon() string { return "lwl" }

// Pick implements queuesim.Dispatcher.
func (lwl) Pick(v queuesim.ServerView, _ *queuesim.DispatchState) int {
	best := 0
	bestWork := v.WorkLeft(0)
	for s := 1; s < v.NumServers(); s++ {
		if w := v.WorkLeft(s); w < bestWork {
			best, bestWork = s, w
		}
	}
	return best
}

// rr cycles through the servers in index order.
type rr struct{}

// RoundRobin returns the round-robin dispatcher.
func RoundRobin() queuesim.Dispatcher { return rr{} }

// Canon implements queuesim.Dispatcher.
func (rr) Canon() string { return "rr" }

// Pick implements queuesim.Dispatcher.
func (rr) Pick(v queuesim.ServerView, st *queuesim.DispatchState) int {
	s := st.Cursor % v.NumServers()
	st.Cursor++
	return s
}

// randomD samples d distinct servers uniformly and joins the shortest of
// them — the power-of-d-choices policy. d=1 is a uniform random split;
// d >= k degenerates to JSQ.
type randomD struct {
	d int
}

// RandomD returns the power-of-d-choices dispatcher. d must be in
// [1, MaxChoices].
func RandomD(d int) (queuesim.Dispatcher, error) {
	if d < 1 || d > MaxChoices {
		return nil, fmt.Errorf("dispatch: rnd choices %d out of range [1, %d]", d, MaxChoices)
	}
	return randomD{d: d}, nil
}

// Canon implements queuesim.Dispatcher.
func (p randomD) Canon() string { return fmt.Sprintf("rnd(%d)", p.d) }

// Pick implements queuesim.Dispatcher.
func (p randomD) Pick(v queuesim.ServerView, st *queuesim.DispatchState) int {
	k := v.NumServers()
	if p.d >= k {
		return jsq{}.Pick(v, st)
	}
	// Sample d distinct candidates by rejection; the scratch array stays
	// on the stack (d <= MaxChoices).
	var picks [MaxChoices]int
	for i := 0; i < p.d; i++ {
		for {
			c := st.RNG.Intn(k)
			dup := false
			for j := 0; j < i; j++ {
				if picks[j] == c {
					dup = true
					break
				}
			}
			if !dup {
				picks[i] = c
				break
			}
		}
	}
	best := picks[0]
	bestLen := v.QueueLen(best)
	for i := 1; i < p.d; i++ {
		if l := v.QueueLen(picks[i]); l < bestLen || (l == bestLen && picks[i] < best) {
			best, bestLen = picks[i], l
		}
	}
	return best
}

// Parse parses a dispatcher spec: "jsq", "lwl", "rr" or "rnd(d)",
// case-insensitively. It never panics on malformed input.
func Parse(spec string) (queuesim.Dispatcher, error) {
	s := strings.TrimSpace(strings.ToLower(spec))
	name, arg := s, ""
	hasArg := false
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("dispatch: spec %q missing ')'", spec)
		}
		name, arg = strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:len(s)-1])
		hasArg = true
	}
	switch name {
	case "jsq", "lwl", "rr":
		if hasArg {
			return nil, fmt.Errorf("dispatch: %q takes no arguments", name)
		}
		switch name {
		case "jsq":
			return JSQ(), nil
		case "lwl":
			return LeastWork(), nil
		default:
			return RoundRobin(), nil
		}
	case "rnd":
		if arg == "" {
			return nil, fmt.Errorf("dispatch: rnd needs a choice count, e.g. rnd(2)")
		}
		d, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("dispatch: rnd choices %q: %v", arg, err)
		}
		return RandomD(d)
	default:
		return nil, fmt.Errorf("dispatch: unknown dispatcher %q", spec)
	}
}

// MustParse is Parse for static specs; it panics on error.
func MustParse(spec string) queuesim.Dispatcher {
	d, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return d
}
