package queuesim

// Differential equivalence suite: the pooled production engine
// (queuesim.go on sim.PooledEngine) must produce bit-identical output to
// the preserved heap-and-closure reference implementation (reference.go
// on sim.Engine) — response-time and queueing-time vectors, every scalar
// in Result, and the full tracer event sequence — across policies, refill
// modes, arrival processes and seeds. Nothing here tolerates epsilon:
// the two implementations share the RNG draw order, the accountant call
// order and the (time, seq) event order, so any divergence is a bug, not
// noise.

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/sprint"
)

// diffSeeds are the seeds every differential config runs under.
var diffSeeds = []uint64{1, 7, 42}

// diffConfigs cover the simulator's behavioural axes: sprinting off, each
// refill mode, multiple slots, heavy-tailed arrivals with budget
// exhaustion, slowdown "sprints" (speedup < 1) and warmup trimming.
var diffConfigs = []struct {
	name string
	p    Params
	// wantEngages / wantExhaustions assert the config actually exercises
	// the code path it exists for, so the equivalence is not vacuous.
	wantEngages     bool
	wantExhaustions bool
}{
	{
		name: "no-sprint",
		p: Params{
			ArrivalRate: 8, Service: dist.NewExponential(10), ServiceRate: 10,
			Timeout: -1, NumQueries: 600,
		},
	},
	{
		name: "continuous-refill",
		p: Params{
			ArrivalRate: 8, Service: dist.NewExponential(10), ServiceRate: 10,
			SprintRate: 18, Timeout: 0.12, BudgetSeconds: 20, RefillTime: 80,
			NumQueries: 600,
		},
		wantEngages: true,
	},
	{
		name: "paused-refill",
		p: Params{
			ArrivalRate: 8, Service: dist.NewExponential(10), ServiceRate: 10,
			SprintRate: 18, Timeout: 0.12, BudgetSeconds: 15, RefillTime: 60,
			Refill: sprint.RefillPaused, NumQueries: 600,
		},
		wantEngages: true,
	},
	{
		name: "window-refill",
		p: Params{
			ArrivalRate: 8, Service: dist.NewExponential(10), ServiceRate: 10,
			SprintRate: 18, Timeout: 0.1, BudgetSeconds: 6, RefillTime: 10,
			Refill: sprint.RefillWindow, NumQueries: 600,
		},
		wantEngages:     true,
		wantExhaustions: true,
	},
	{
		name: "multi-slot",
		p: Params{
			ArrivalRate: 24, Service: dist.NewExponential(10), ServiceRate: 10,
			SprintRate: 16, Timeout: 0.2, BudgetSeconds: 30, RefillTime: 100,
			Slots: 3, NumQueries: 600,
		},
		wantEngages: true,
	},
	{
		name: "pareto-arrivals-exhaustion",
		p: Params{
			ArrivalRate: 9, ArrivalKind: dist.KindPareto,
			Service: dist.NewExponential(10), ServiceRate: 10,
			SprintRate: 20, Timeout: 0.05, BudgetSeconds: 2, RefillTime: 40,
			NumQueries: 800,
		},
		wantEngages:     true,
		wantExhaustions: true,
	},
	{
		name: "slowdown-sprint",
		p: Params{
			ArrivalRate: 6, Service: dist.NewExponential(10), ServiceRate: 10,
			SprintRate: 7, Timeout: 0.15, BudgetSeconds: 12, RefillTime: 50,
			NumQueries: 500,
		},
		wantEngages: true,
	},
	{
		name: "warmup",
		p: Params{
			ArrivalRate: 8, Service: dist.NewExponential(10), ServiceRate: 10,
			SprintRate: 18, Timeout: 0.12, BudgetSeconds: 20, RefillTime: 80,
			NumQueries: 400, Warmup: 150,
		},
		wantEngages: true,
	},
}

// captureTracer returns a tracer appending every event to the returned
// slice pointer.
func captureTracer() (obs.QueryTracer, *[]obs.QueryEvent) {
	events := &[]obs.QueryEvent{}
	return obs.TracerFunc(func(e obs.QueryEvent) { *events = append(*events, e) }), events
}

// requireFloatsBitIdentical fails unless a and b are element-wise
// bit-identical (distinguishes -0 from 0 and any NaN payloads).
func requireFloatsBitIdentical(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v (%#x), want %v (%#x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// requireResultsIdentical fails unless got and want match bit-for-bit.
func requireResultsIdentical(t *testing.T, got, want *Result) {
	t.Helper()
	requireFloatsBitIdentical(t, "RTs", got.RTs, want.RTs)
	requireFloatsBitIdentical(t, "QueueingTimes", got.QueueingTimes, want.QueueingTimes)
	if got.SprintedCount != want.SprintedCount {
		t.Fatalf("SprintedCount = %d, want %d", got.SprintedCount, want.SprintedCount)
	}
	if math.Float64bits(got.SprintSeconds) != math.Float64bits(want.SprintSeconds) {
		t.Fatalf("SprintSeconds = %v, want %v", got.SprintSeconds, want.SprintSeconds)
	}
	if math.Float64bits(got.Duration) != math.Float64bits(want.Duration) {
		t.Fatalf("Duration = %v, want %v", got.Duration, want.Duration)
	}
	if got.Engages != want.Engages {
		t.Fatalf("Engages = %d, want %d", got.Engages, want.Engages)
	}
	if got.Exhaustions != want.Exhaustions {
		t.Fatalf("Exhaustions = %d, want %d", got.Exhaustions, want.Exhaustions)
	}
	if got.MaxLive != want.MaxLive {
		t.Fatalf("MaxLive = %d, want %d", got.MaxLive, want.MaxLive)
	}
}

// requireEventsIdentical fails unless the two tracer sequences match
// exactly: same events, same order, bit-identical times and values.
func requireEventsIdentical(t *testing.T, got, want []obs.QueryEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("traced %d events, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Type != w.Type || g.Query != w.Query || g.Class != w.Class ||
			math.Float64bits(g.Time) != math.Float64bits(w.Time) ||
			math.Float64bits(g.Value) != math.Float64bits(w.Value) {
			t.Fatalf("event %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestDifferentialSingleClass(t *testing.T) {
	for _, cfg := range diffConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			sawEngage, sawExhaustion := false, false
			for _, seed := range diffSeeds {
				p := cfg.p
				p.Seed = seed

				pr := p
				refTracer, refEvents := captureTracer()
				pr.Tracer = refTracer
				want, err := runReference(pr)
				if err != nil {
					t.Fatalf("seed %d: reference: %v", seed, err)
				}

				pp := p
				gotTracer, gotEvents := captureTracer()
				pp.Tracer = gotTracer
				got, err := Run(pp)
				if err != nil {
					t.Fatalf("seed %d: pooled: %v", seed, err)
				}

				requireResultsIdentical(t, got, want)
				requireEventsIdentical(t, *gotEvents, *refEvents)
				sawEngage = sawEngage || got.Engages > 0
				sawExhaustion = sawExhaustion || got.Exhaustions > 0
			}
			if cfg.wantEngages && !sawEngage {
				t.Fatal("config never engaged a sprint; differential check is vacuous")
			}
			if cfg.wantExhaustions && !sawExhaustion {
				t.Fatal("config never exhausted the budget; differential check is vacuous")
			}
		})
	}
}

// TestDifferentialNoTracer re-runs the configs without a tracer: the
// production hot path branches on tr == nil, so the traced equivalence
// above does not by itself cover the untraced branches.
func TestDifferentialNoTracer(t *testing.T) {
	for _, cfg := range diffConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for _, seed := range diffSeeds {
				p := cfg.p
				p.Seed = seed
				want, err := runReference(p)
				if err != nil {
					t.Fatalf("seed %d: reference: %v", seed, err)
				}
				got, err := Run(p)
				if err != nil {
					t.Fatalf("seed %d: pooled: %v", seed, err)
				}
				requireResultsIdentical(t, got, want)
			}
		})
	}
}

var diffMultiConfigs = []struct {
	name string
	p    MultiParams
}{
	{
		name: "two-class-one-sprints",
		p: MultiParams{
			ArrivalRate: 9,
			Classes: []ClassParams{
				{Name: "latency", Weight: 0.3, Service: dist.NewExponential(12), ServiceRate: 12, SprintRate: 22, Timeout: 0.1},
				{Name: "batch", Weight: 0.7, Service: dist.NewExponential(8), ServiceRate: 8, Timeout: -1},
			},
			BudgetSeconds: 15, RefillTime: 60, NumQueries: 600,
		},
	},
	{
		name: "three-class-shared-tight-budget",
		p: MultiParams{
			ArrivalRate: 20, ArrivalKind: dist.KindPareto,
			Classes: []ClassParams{
				{Name: "a", Weight: 0.2, Service: dist.NewExponential(15), ServiceRate: 15, SprintRate: 30, Timeout: 0.04},
				{Name: "b", Weight: 0.5, Service: dist.NewExponential(10), ServiceRate: 10, SprintRate: 14, Timeout: 0.1},
				{Name: "c", Weight: 0.3, Service: dist.NewExponential(6), ServiceRate: 6, SprintRate: 5, Timeout: 0.2},
			},
			BudgetSeconds: 3, RefillTime: 30, Slots: 2, NumQueries: 600, Warmup: 50,
		},
	},
}

func TestDifferentialMultiClass(t *testing.T) {
	for _, cfg := range diffMultiConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for _, seed := range diffSeeds {
				p := cfg.p
				p.Seed = seed

				pr := p
				refTracer, refEvents := captureTracer()
				pr.Tracer = refTracer
				want, err := runMultiReference(pr)
				if err != nil {
					t.Fatalf("seed %d: reference: %v", seed, err)
				}

				pp := p
				gotTracer, gotEvents := captureTracer()
				pp.Tracer = gotTracer
				got, err := RunMulti(pp)
				if err != nil {
					t.Fatalf("seed %d: pooled: %v", seed, err)
				}

				requireResultsIdentical(t, &got.Result, &want.Result)
				requireEventsIdentical(t, *gotEvents, *refEvents)
				if len(got.ByClass) != len(want.ByClass) {
					t.Fatalf("ByClass has %d classes, want %d", len(got.ByClass), len(want.ByClass))
				}
				for _, c := range p.Classes {
					requireFloatsBitIdentical(t, "ByClass["+c.Name+"]", got.ByClass[c.Name], want.ByClass[c.Name])
				}
			}
		})
	}
}

// TestDifferentialRunReps proves replications on one reused runner are
// bit-identical to independent reference runs with the same derived
// seeds — i.e. no state bleeds across RunInto calls.
func TestDifferentialRunReps(t *testing.T) {
	p := diffConfigs[3].p // window-refill: exercises exhaustion + refill
	p.Seed = 99
	const reps = 5
	results, err := RunReps(p, reps)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != reps {
		t.Fatalf("got %d results, want %d", len(results), reps)
	}
	for i := range results {
		pi := p
		pi.Seed = repSeed(p.Seed, i)
		want, err := runReference(pi)
		if err != nil {
			t.Fatal(err)
		}
		requireResultsIdentical(t, &results[i], want)
	}
}

// TestRunnerReuseAcrossPolicies runs mismatched configs back to back on
// one Runner and checks the third run (same config as the first) is
// unaffected by the second — a reset-completeness probe across refill
// modes, slot counts and arrival families.
func TestRunnerReuseAcrossPolicies(t *testing.T) {
	r := NewRunner()
	a := diffConfigs[5].p // pareto arrivals, tight budget
	a.Seed = 11
	b := diffConfigs[4].p // 3 slots, different arrival family
	b.Seed = 23

	first, err := r.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(b); err != nil {
		t.Fatal(err)
	}
	third, err := r.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	requireResultsIdentical(t, third, first)

	want, err := runReference(a)
	if err != nil {
		t.Fatal(err)
	}
	requireResultsIdentical(t, first, want)
}

// TestPredictWorkerCountInvariant checks the chunked parallel path pools
// the same numbers regardless of worker count (replication seeds depend
// only on the replication index).
func TestPredictWorkerCountInvariant(t *testing.T) {
	p := diffConfigs[1].p
	p.Seed = 5
	p.NumQueries = 300
	serial, err := Predict(p, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 6, 8} {
		par, err := Predict(p, 6, workers)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(par.MeanRT) != math.Float64bits(serial.MeanRT) ||
			math.Float64bits(par.P95RT) != math.Float64bits(serial.P95RT) ||
			math.Float64bits(par.P99RT) != math.Float64bits(serial.P99RT) ||
			par.QueriesSimulated != serial.QueriesSimulated {
			t.Fatalf("workers=%d: %+v differs from serial %+v", workers, par, serial)
		}
	}
}
