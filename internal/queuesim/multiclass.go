package queuesim

import (
	"fmt"
	"math"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/sprint"
	"mdsprint/internal/stats"
)

// ClassParams describes one query class in a multi-class simulation: its
// share of arrivals, its service process, and its own sprinting clause.
// Section 5 notes that supporting multiple sprint rates and timeouts
// needs only small modifications to the simulator; this file is that
// modification.
type ClassParams struct {
	// Name labels the class in results.
	Name string
	// Weight is the probability an arrival belongs to this class;
	// weights must sum to 1.
	Weight float64
	// Service and ServiceRate are the class's sustained service model.
	Service     dist.Dist
	ServiceRate float64
	// SprintRate is the class's effective (or marginal) sprint rate; 0
	// disables sprinting for the class.
	SprintRate float64
	// Timeout is the class's sprint trigger; negative disables.
	Timeout float64
}

// MultiParams configures a multi-class G/G/k simulation with a shared
// sprinting budget.
type MultiParams struct {
	ArrivalRate float64
	ArrivalKind dist.Kind
	Arrival     dist.Dist // optional override, as in Params
	Classes     []ClassParams
	// BudgetSeconds and RefillTime define the shared budget.
	BudgetSeconds float64
	RefillTime    float64
	Slots         int
	NumQueries    int
	Warmup        int
	Seed          uint64
	// Tracer receives per-query lifecycle events, tagged with the
	// query's class name. Nil disables tracing (see Params.Tracer).
	Tracer obs.QueryTracer
	// Clock times the run for the flushed metrics; nil uses the real
	// clock (see Params.Clock).
	Clock obs.Clock
}

func (p MultiParams) validate() error {
	if p.ArrivalRate <= 0 {
		return fmt.Errorf("queuesim: arrival rate %v must be positive", p.ArrivalRate)
	}
	if len(p.Classes) == 0 {
		return fmt.Errorf("queuesim: at least one class required")
	}
	sum := 0.0
	for i, c := range p.Classes {
		if c.Service == nil || c.ServiceRate <= 0 {
			return fmt.Errorf("queuesim: class %d needs a service model", i)
		}
		if c.Weight <= 0 {
			return fmt.Errorf("queuesim: class %d weight %v must be positive", i, c.Weight)
		}
		sum += c.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("queuesim: class weights sum to %v, want 1", sum)
	}
	return nil
}

// MultiResult extends Result with per-class response times.
type MultiResult struct {
	Result
	// ByClass maps class name to its measured response times.
	ByClass map[string][]float64
}

// MeanRTOf returns one class's mean response time.
func (r *MultiResult) MeanRTOf(name string) float64 { return stats.Mean(r.ByClass[name]) }

// RunMulti simulates the multi-class system. Classes share the FIFO queue,
// the execution slots and the sprinting budget, but each class sprints at
// its own rate after its own timeout. The run executes on the same pooled
// runner core as Run; the only behavioural differences are the weighted
// class draw per arrival and per-class service, timeout and speedup.
func RunMulti(p MultiParams) (*MultiResult, error) {
	r := getRunner()
	defer putRunner(r)
	res := &MultiResult{}
	if err := r.runMultiInto(p, res); err != nil {
		return nil, err
	}
	return res, nil
}

// runMultiInto configures the runner for p's classes and runs the
// simulation into out.
func (r *Runner) runMultiInto(p MultiParams, out *MultiResult) error {
	if err := p.validate(); err != nil {
		return err
	}
	if p.Slots == 0 {
		p.Slots = 1
	}
	if p.NumQueries == 0 {
		p.NumQueries = 1000
	}
	if p.ArrivalKind == "" {
		p.ArrivalKind = dist.KindExponential
	}
	refill := 0.0
	if p.RefillTime > 0 {
		refill = p.BudgetSeconds / p.RefillTime
	}
	r.resetCore()
	r.rng.Reseed(p.Seed)
	if p.Arrival != nil {
		r.arr = p.Arrival
	} else {
		//lint:ignore floateq the cache key must match the rate exactly; a near-match would silently change the arrival process
		if r.arrCached == nil || r.arrKind != p.ArrivalKind || r.arrRate != p.ArrivalRate {
			r.arrKind, r.arrRate = p.ArrivalKind, p.ArrivalRate
			r.arrCached = dist.ForRate(p.ArrivalKind, p.ArrivalRate)
		}
		r.arr = r.arrCached
	}
	// The shared budget always refills continuously in the multi-class
	// model (the original implementation never exposed paused/window
	// semantics here).
	r.acct.Reset(p.BudgetSeconds, refill, sprint.RefillContinuous, 0)
	r.tr = p.Tracer
	r.multi = true
	r.drawClass = true
	r.classes = r.classes[:0]
	for _, c := range p.Classes {
		// Per-class speedups, floored like Params.speedup.
		sp := 1.0
		if c.SprintRate > 0 {
			sp = c.SprintRate / c.ServiceRate
			if sp < 0.1 {
				sp = 0.1
			}
		}
		//lint:ignore floateq per-class speedups are exactly 1 only via the no-sprint sentinel; ratios near 1 must keep sprinting
		sprintOn := c.Timeout >= 0 && p.BudgetSeconds > 0 && sp != 1
		r.classes = append(r.classes, classCfg{
			name:     c.Name,
			weight:   c.Weight,
			service:  c.Service,
			timeout:  c.Timeout,
			speedup:  sp,
			sprintOn: sprintOn,
		})
	}
	// Multi-class runs stay single-server FIFO: the paper's Section 5
	// extension varies sprint clauses per class, not the ready-queue
	// order.
	r.configureDiscipline(Discipline{Kind: DiscFIFO}, 1, p.Slots, nil, p.Seed)
	r.warmup = p.Warmup
	total := p.NumQueries + p.Warmup
	r.total = total

	out.Result = Result{
		RTs:           sizedFloats(out.RTs, p.NumQueries),
		QueueingTimes: sizedFloats(out.QueueingTimes, p.NumQueries),
	}
	if out.ByClass == nil {
		out.ByClass = map[string][]float64{}
	}
	r.res = &out.Result
	r.mres = out

	if total > 0 {
		r.eng.Schedule(r.arr.Sample(&r.rng), r.cbArrive, 0)
	}
	clk := obs.ClockOr(p.Clock)
	start := clk.Now()
	fired := r.eng.RunAll()
	out.Engages = r.engages
	out.Exhaustions = r.exhaustions
	out.MaxLive = r.qHighWater
	flushMetrics(total, fired, r.engages, r.exhaustions, clk.Now().Sub(start).Seconds())
	r.res = nil
	r.mres = nil
	return nil
}
