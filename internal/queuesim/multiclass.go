package queuesim

import (
	"fmt"
	"math"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/sim"
	"mdsprint/internal/sprint"
	"mdsprint/internal/stats"
)

// ClassParams describes one query class in a multi-class simulation: its
// share of arrivals, its service process, and its own sprinting clause.
// Section 5 notes that supporting multiple sprint rates and timeouts
// needs only small modifications to the simulator; this file is that
// modification.
type ClassParams struct {
	// Name labels the class in results.
	Name string
	// Weight is the probability an arrival belongs to this class;
	// weights must sum to 1.
	Weight float64
	// Service and ServiceRate are the class's sustained service model.
	Service     dist.Dist
	ServiceRate float64
	// SprintRate is the class's effective (or marginal) sprint rate; 0
	// disables sprinting for the class.
	SprintRate float64
	// Timeout is the class's sprint trigger; negative disables.
	Timeout float64
}

// MultiParams configures a multi-class G/G/k simulation with a shared
// sprinting budget.
type MultiParams struct {
	ArrivalRate float64
	ArrivalKind dist.Kind
	Arrival     dist.Dist // optional override, as in Params
	Classes     []ClassParams
	// BudgetSeconds and RefillTime define the shared budget.
	BudgetSeconds float64
	RefillTime    float64
	Slots         int
	NumQueries    int
	Warmup        int
	Seed          uint64
	// Tracer receives per-query lifecycle events, tagged with the
	// query's class name. Nil disables tracing (see Params.Tracer).
	Tracer obs.QueryTracer
	// Clock times the run for the flushed metrics; nil uses the real
	// clock (see Params.Clock).
	Clock obs.Clock
}

func (p MultiParams) validate() error {
	if p.ArrivalRate <= 0 {
		return fmt.Errorf("queuesim: arrival rate %v must be positive", p.ArrivalRate)
	}
	if len(p.Classes) == 0 {
		return fmt.Errorf("queuesim: at least one class required")
	}
	sum := 0.0
	for i, c := range p.Classes {
		if c.Service == nil || c.ServiceRate <= 0 {
			return fmt.Errorf("queuesim: class %d needs a service model", i)
		}
		if c.Weight <= 0 {
			return fmt.Errorf("queuesim: class %d weight %v must be positive", i, c.Weight)
		}
		sum += c.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("queuesim: class weights sum to %v, want 1", sum)
	}
	return nil
}

// MultiResult extends Result with per-class response times.
type MultiResult struct {
	Result
	// ByClass maps class name to its measured response times.
	ByClass map[string][]float64
}

// MeanRTOf returns one class's mean response time.
func (r *MultiResult) MeanRTOf(name string) float64 { return stats.Mean(r.ByClass[name]) }

// mcQuery extends query with its class index.
type mcQuery struct {
	query
	class int
}

// RunMulti simulates the multi-class system. Classes share the FIFO queue,
// the execution slots and the sprinting budget, but each class sprints at
// its own rate after its own timeout.
func RunMulti(p MultiParams) (*MultiResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.Slots == 0 {
		p.Slots = 1
	}
	if p.NumQueries == 0 {
		p.NumQueries = 1000
	}
	if p.ArrivalKind == "" {
		p.ArrivalKind = dist.KindExponential
	}
	arr := p.Arrival
	if arr == nil {
		arr = dist.ForRate(p.ArrivalKind, p.ArrivalRate)
	}
	refill := 0.0
	if p.RefillTime > 0 {
		refill = p.BudgetSeconds / p.RefillTime
	}

	s := &mcState{
		p:    p,
		eng:  sim.New(),
		rng:  dist.NewRNG(p.Seed),
		arr:  arr,
		acct: sprint.NewAccountant(p.BudgetSeconds, refill),
		tr:   p.Tracer,
		free: p.Slots,
		res:  MultiResult{ByClass: map[string][]float64{}},
	}
	// Per-class speedups, floored like Params.speedup.
	s.speedups = make([]float64, len(p.Classes))
	for i, c := range p.Classes {
		sp := 1.0
		if c.SprintRate > 0 {
			sp = c.SprintRate / c.ServiceRate
			if sp < 0.1 {
				sp = 0.1
			}
		}
		s.speedups[i] = sp
	}
	total := p.NumQueries + p.Warmup
	if total > 0 {
		s.eng.Schedule(arr.Sample(s.rng), s.arrive)
	}
	clk := obs.ClockOr(p.Clock)
	start := clk.Now()
	fired := s.eng.RunAll()
	flushMetrics(total, fired, s.engages, s.exhaustions, clk.Now().Sub(start).Seconds())
	return &s.res, nil
}

type mcState struct {
	p        MultiParams
	eng      *sim.Engine
	rng      *dist.RNG
	arr      dist.Dist
	acct     *sprint.Accountant
	speedups []float64
	tr       obs.QueryTracer

	queue    []*mcQuery
	running  []*mcQuery
	free     int
	budgetEv *sim.Event

	arrived     int
	engages     int
	exhaustions int
	exhausted   bool
	res         MultiResult
}

// emit traces one event tagged with q's class; callers guard on s.tr.
func (s *mcState) emit(typ obs.EventType, now float64, q *mcQuery, value float64) {
	s.tr.Event(obs.QueryEvent{
		Type: typ, Time: now, Query: q.id,
		Class: s.p.Classes[q.class].Name, Value: value,
	})
}

// pickClass draws a class index by weight.
func (s *mcState) pickClass() int {
	u := s.rng.Float64()
	acc := 0.0
	for i, c := range s.p.Classes {
		acc += c.Weight
		if u < acc {
			return i
		}
	}
	return len(s.p.Classes) - 1
}

// classSprints reports whether class ci's sprint clause is active.
func (s *mcState) classSprints(ci int) bool {
	//lint:ignore floateq per-class speedups are exactly 1 only via the no-sprint sentinel; ratios near 1 must keep sprinting
	return s.p.Classes[ci].Timeout >= 0 && s.p.BudgetSeconds > 0 && s.speedups[ci] != 1
}

func (s *mcState) arrive() {
	now := s.eng.Now()
	id := s.arrived
	s.arrived++
	ci := s.pickClass()
	q := &mcQuery{class: ci}
	q.id = id
	q.arrival = now
	q.service = s.p.Classes[ci].Service.Sample(s.rng)
	q.warm = id < s.p.Warmup
	if s.tr != nil {
		s.emit(obs.EvArrival, now, q, q.service)
	}
	s.queue = append(s.queue, q)
	if s.classSprints(ci) {
		q.timeoutEv = s.eng.Schedule(now+s.p.Classes[ci].Timeout, func() { s.onTimeout(q) })
	}
	if s.arrived < s.p.NumQueries+s.p.Warmup {
		s.eng.After(s.arr.Sample(s.rng), s.arrive)
	}
	s.dispatch()
}

func (s *mcState) dispatch() {
	now := s.eng.Now()
	for s.free > 0 && len(s.queue) > 0 {
		q := s.queue[0]
		s.queue = s.queue[1:]
		s.free--
		q.running = true
		q.start = now
		q.seg = now
		q.tau = 0
		s.running = append(s.running, q)
		if s.tr != nil {
			s.emit(obs.EvServiceStart, now, q, now-q.arrival)
		}
		if q.pending && s.acct.CanSprint(now) {
			s.engage(q)
		} else {
			q.departEv = s.eng.Schedule(now+q.service, func() { s.depart(q) })
		}
	}
}

func (s *mcState) progress(q *mcQuery, now float64) float64 {
	rate := 1.0
	if q.sprint {
		rate = s.speedups[q.class]
	}
	tau := q.tau + (now-q.seg)*rate/q.service
	return math.Min(tau, 1)
}

func (s *mcState) onTimeout(q *mcQuery) {
	now := s.eng.Now()
	if s.tr != nil {
		s.emit(obs.EvTimeout, now, q, s.p.Classes[q.class].Timeout)
	}
	if !q.running {
		q.pending = true
		return
	}
	if !q.sprint && s.acct.CanSprint(now) {
		q.tau = s.progress(q, now)
		q.seg = now
		s.engage(q)
	}
}

func (s *mcState) engage(q *mcQuery) {
	now := s.eng.Now()
	s.engages++
	if s.tr != nil {
		level := s.acct.Level(now)
		if s.exhausted {
			s.emit(obs.EvRefill, now, q, level)
		}
		s.emit(obs.EvSprintStart, now, q, level)
	}
	s.exhausted = false
	s.acct.StartSprint(now)
	q.sprint = true
	q.sprinted = true
	q.sprintStart = now
	remaining := (1 - q.tau) * q.service / s.speedups[q.class]
	if q.departEv != nil {
		s.eng.Cancel(q.departEv)
	}
	q.departEv = s.eng.Schedule(now+remaining, func() { s.depart(q) })
	s.replanBudget()
}

func (s *mcState) replanBudget() {
	now := s.eng.Now()
	if s.budgetEv != nil {
		s.eng.Cancel(s.budgetEv)
		s.budgetEv = nil
	}
	tte := s.acct.TimeToEmpty(now)
	if math.IsInf(tte, 1) {
		return
	}
	s.budgetEv = s.eng.Schedule(now+tte, s.onBudgetEmpty)
}

func (s *mcState) onBudgetEmpty() {
	now := s.eng.Now()
	s.budgetEv = nil
	s.exhaustions++
	s.exhausted = true
	if s.tr != nil {
		active := 0
		for _, q := range s.running {
			if q.sprint {
				active++
			}
		}
		s.tr.Event(obs.QueryEvent{Type: obs.EvBudgetExhausted, Time: now, Query: -1, Value: float64(active)})
	}
	for _, q := range s.running {
		if !q.sprint {
			continue
		}
		q.tau = s.progress(q, now)
		q.seg = now
		s.acct.StopSprint(now)
		q.sprint = false
		s.res.SprintSeconds += now - q.sprintStart
		if s.tr != nil {
			s.emit(obs.EvSprintStop, now, q, now-q.sprintStart)
		}
		remaining := (1 - q.tau) * q.service
		q.departEv = s.eng.Reschedule(q.departEv, now+remaining)
	}
	s.replanBudget()
}

func (s *mcState) depart(q *mcQuery) {
	now := s.eng.Now()
	s.res.Duration = now
	if q.sprint {
		s.acct.StopSprint(now)
		q.sprint = false
		s.res.SprintSeconds += now - q.sprintStart
		if s.tr != nil {
			s.emit(obs.EvSprintStop, now, q, now-q.sprintStart)
		}
		s.replanBudget()
	}
	if s.tr != nil {
		s.emit(obs.EvDeparture, now, q, now-q.arrival)
	}
	if q.timeoutEv != nil {
		s.eng.Cancel(q.timeoutEv)
		q.timeoutEv = nil
	}
	for i, rq := range s.running {
		if rq == q {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	q.running = false
	if !q.warm {
		rt := now - q.arrival
		s.res.RTs = append(s.res.RTs, rt)
		s.res.QueueingTimes = append(s.res.QueueingTimes, q.start-q.arrival)
		name := s.p.Classes[q.class].Name
		s.res.ByClass[name] = append(s.res.ByClass[name], rt)
		if q.sprinted {
			s.res.SprintedCount++
		}
	}
	s.free++
	s.dispatch()
}
