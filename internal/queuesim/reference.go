package queuesim

import (
	"math"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/sim"
	"mdsprint/internal/sprint"
)

// This file preserves the original heap-and-closure simulator verbatim
// (one *refQuery and 2-3 *sim.Event allocations plus per-event closures
// per simulated query, and a head-shifting slice FIFO). It is NOT used by
// any production path: it exists so the differential test suite can prove
// the pooled engine in queuesim.go produces bit-identical results — RT
// and queueing-time vectors, tracer event sequences, sprint accounting —
// across seeds, policies and refill modes. Any semantic change to the
// simulator must land in both implementations or the differential suite
// fails, which is the point.
//
// Differences from the production path, deliberate and test-invisible:
// the reference does not flush obs metrics or read the run clock (metrics
// are not part of the equivalence contract, and skipping them keeps
// differential tests from double-counting process-wide counters).

// refQuery is Algorithm 1's query object, heap-allocated per arrival.
type refQuery struct {
	id          int
	arrival     float64
	service     float64
	start       float64
	tau         float64 // progress at segment start
	seg         float64 // segment start time
	sprint      bool
	sprintStart float64
	pending     bool
	warm        bool

	departEv  *sim.Event
	timeoutEv *sim.Event
	running   bool
	sprinted  bool
}

// refState is the running reference simulation.
type refState struct {
	p       Params
	eng     *sim.Engine
	rng     *dist.RNG
	arr     dist.Dist
	acct    *sprint.Accountant
	speedup float64
	tr      obs.QueryTracer // nil when tracing is off

	queue    []*refQuery
	running  []*refQuery
	free     int
	budgetEv *sim.Event

	arrived     int
	engages     int
	exhaustions int
	exhausted   bool
	res         Result
}

// runReference simulates the configured queue with the original engine.
func runReference(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	arr := p.Arrival
	if arr == nil {
		arr = dist.ForRate(p.ArrivalKind, p.ArrivalRate)
	}
	var acctOpts []sprint.AccountantOption
	switch p.Refill {
	case sprint.RefillPaused:
		acctOpts = append(acctOpts, sprint.WithPausedRefill())
	case sprint.RefillWindow:
		if p.RefillTime > 0 {
			acctOpts = append(acctOpts, sprint.WithWindowRefill(p.RefillTime))
		}
	}
	s := &refState{
		p:       p,
		eng:     sim.New(),
		rng:     dist.NewRNG(p.Seed),
		arr:     arr,
		acct:    sprint.NewAccountant(p.BudgetSeconds, refillRate(p), acctOpts...),
		speedup: p.speedup(),
		tr:      p.Tracer,
		free:    p.Slots,
	}
	total := p.NumQueries + p.Warmup
	if total == 0 {
		return &s.res, nil
	}
	s.res.RTs = make([]float64, 0, p.NumQueries)
	s.res.QueueingTimes = make([]float64, 0, p.NumQueries)
	s.eng.Schedule(s.arr.Sample(s.rng), s.arrive)
	s.eng.RunAll()
	s.res.Engages = s.engages
	s.res.Exhaustions = s.exhaustions
	return &s.res, nil
}

// noteLive records the live-query high-water mark the pooled engine
// tracks through its slab, computed here from the logical queue + running
// sets so the two implementations report the identical MaxLive.
func (s *refState) noteLive() {
	if live := len(s.queue) + len(s.running); live > s.res.MaxLive {
		s.res.MaxLive = live
	}
}

func (s *refState) arrive() {
	now := s.eng.Now()
	id := s.arrived
	s.arrived++
	q := &refQuery{
		id:      id,
		arrival: now,
		service: s.p.Service.Sample(s.rng),
		warm:    id < s.p.Warmup,
	}
	if s.tr != nil {
		s.tr.Event(obs.QueryEvent{Type: obs.EvArrival, Time: now, Query: q.id, Value: q.service})
	}
	s.queue = append(s.queue, q)
	s.noteLive()
	if s.p.sprintingEnabled() {
		q.timeoutEv = s.eng.Schedule(now+s.p.Timeout, func() { s.onTimeout(q) })
	}
	if s.arrived < s.p.NumQueries+s.p.Warmup {
		s.eng.After(s.arr.Sample(s.rng), s.arrive)
	}
	s.dispatch()
}

func (s *refState) dispatch() {
	now := s.eng.Now()
	for s.free > 0 && len(s.queue) > 0 {
		q := s.queue[0]
		s.queue = s.queue[1:]
		s.free--
		q.running = true
		q.start = now
		q.seg = now
		q.tau = 0
		s.running = append(s.running, q)
		if s.tr != nil {
			s.tr.Event(obs.QueryEvent{Type: obs.EvServiceStart, Time: now, Query: q.id, Value: now - q.arrival})
		}
		if q.pending && s.acct.CanSprint(now) {
			s.engage(q)
		} else {
			q.departEv = s.eng.Schedule(now+q.service, func() { s.depart(q) })
		}
	}
}

// progress rolls q's completed-work fraction forward to now.
func (s *refState) progress(q *refQuery, now float64) float64 {
	rate := 1.0
	if q.sprint {
		rate = s.speedup
	}
	tau := q.tau + (now-q.seg)*rate/q.service
	return math.Min(tau, 1)
}

func (s *refState) onTimeout(q *refQuery) {
	now := s.eng.Now()
	if s.tr != nil {
		s.tr.Event(obs.QueryEvent{Type: obs.EvTimeout, Time: now, Query: q.id, Value: s.p.Timeout})
	}
	if !q.running {
		q.pending = true
		return
	}
	if !q.sprint && s.acct.CanSprint(now) {
		q.tau = s.progress(q, now)
		q.seg = now
		s.engage(q)
	}
}

// engage applies Equation 1: the remaining execution shrinks by mu/mu_e.
func (s *refState) engage(q *refQuery) {
	now := s.eng.Now()
	s.engages++
	if s.tr != nil {
		level := s.acct.Level(now)
		if s.exhausted {
			s.tr.Event(obs.QueryEvent{Type: obs.EvRefill, Time: now, Query: q.id, Value: level})
		}
		s.tr.Event(obs.QueryEvent{Type: obs.EvSprintStart, Time: now, Query: q.id, Value: level})
	}
	s.exhausted = false
	s.acct.StartSprint(now)
	q.sprint = true
	q.sprinted = true
	q.sprintStart = now
	remaining := (1 - q.tau) * q.service / s.speedup
	if q.departEv != nil {
		s.eng.Cancel(q.departEv)
	}
	q.departEv = s.eng.Schedule(now+remaining, func() { s.depart(q) })
	s.replanBudget()
}

func (s *refState) replanBudget() {
	now := s.eng.Now()
	if s.budgetEv != nil {
		s.eng.Cancel(s.budgetEv)
		s.budgetEv = nil
	}
	tte := s.acct.TimeToEmpty(now)
	if math.IsInf(tte, 1) {
		return
	}
	s.budgetEv = s.eng.Schedule(now+tte, s.onBudgetEmpty)
}

func (s *refState) onBudgetEmpty() {
	now := s.eng.Now()
	s.budgetEv = nil
	s.exhaustions++
	s.exhausted = true
	if s.tr != nil {
		active := 0
		for _, q := range s.running {
			if q.sprint {
				active++
			}
		}
		s.tr.Event(obs.QueryEvent{Type: obs.EvBudgetExhausted, Time: now, Query: -1, Value: float64(active)})
	}
	for _, q := range s.running {
		if !q.sprint {
			continue
		}
		q.tau = s.progress(q, now)
		q.seg = now
		s.acct.StopSprint(now)
		q.sprint = false
		s.res.SprintSeconds += now - q.sprintStart
		if s.tr != nil {
			s.tr.Event(obs.QueryEvent{Type: obs.EvSprintStop, Time: now, Query: q.id, Value: now - q.sprintStart})
		}
		remaining := (1 - q.tau) * q.service
		q.departEv = s.eng.Reschedule(q.departEv, now+remaining)
	}
	s.replanBudget()
}

func (s *refState) depart(q *refQuery) {
	now := s.eng.Now()
	s.res.Duration = now
	if q.sprint {
		s.acct.StopSprint(now)
		q.sprint = false
		s.res.SprintSeconds += now - q.sprintStart
		if s.tr != nil {
			s.tr.Event(obs.QueryEvent{Type: obs.EvSprintStop, Time: now, Query: q.id, Value: now - q.sprintStart})
		}
		s.replanBudget()
	}
	if s.tr != nil {
		s.tr.Event(obs.QueryEvent{Type: obs.EvDeparture, Time: now, Query: q.id, Value: now - q.arrival})
	}
	if q.timeoutEv != nil {
		s.eng.Cancel(q.timeoutEv)
		q.timeoutEv = nil
	}
	for i, rq := range s.running {
		if rq == q {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	q.running = false
	if !q.warm {
		s.res.RTs = append(s.res.RTs, now-q.arrival)
		s.res.QueueingTimes = append(s.res.QueueingTimes, q.start-q.arrival)
		if q.sprinted {
			s.res.SprintedCount++
		}
	}
	s.free++
	s.dispatch()
}

// refMCQuery extends refQuery with its class index.
type refMCQuery struct {
	refQuery
	class int
}

// refMCState is the running multi-class reference simulation.
type refMCState struct {
	p        MultiParams
	eng      *sim.Engine
	rng      *dist.RNG
	arr      dist.Dist
	acct     *sprint.Accountant
	speedups []float64
	tr       obs.QueryTracer

	queue    []*refMCQuery
	running  []*refMCQuery
	free     int
	budgetEv *sim.Event

	arrived     int
	engages     int
	exhaustions int
	exhausted   bool
	res         MultiResult
}

// runMultiReference simulates the multi-class system with the original
// engine.
func runMultiReference(p MultiParams) (*MultiResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.Slots == 0 {
		p.Slots = 1
	}
	if p.NumQueries == 0 {
		p.NumQueries = 1000
	}
	if p.ArrivalKind == "" {
		p.ArrivalKind = dist.KindExponential
	}
	arr := p.Arrival
	if arr == nil {
		arr = dist.ForRate(p.ArrivalKind, p.ArrivalRate)
	}
	refill := 0.0
	if p.RefillTime > 0 {
		refill = p.BudgetSeconds / p.RefillTime
	}

	s := &refMCState{
		p:    p,
		eng:  sim.New(),
		rng:  dist.NewRNG(p.Seed),
		arr:  arr,
		acct: sprint.NewAccountant(p.BudgetSeconds, refill),
		tr:   p.Tracer,
		free: p.Slots,
		res:  MultiResult{ByClass: map[string][]float64{}},
	}
	s.speedups = make([]float64, len(p.Classes))
	for i, c := range p.Classes {
		sp := 1.0
		if c.SprintRate > 0 {
			sp = c.SprintRate / c.ServiceRate
			if sp < 0.1 {
				sp = 0.1
			}
		}
		s.speedups[i] = sp
	}
	total := p.NumQueries + p.Warmup
	if total > 0 {
		s.eng.Schedule(arr.Sample(s.rng), s.arrive)
	}
	s.eng.RunAll()
	s.res.Engages = s.engages
	s.res.Exhaustions = s.exhaustions
	return &s.res, nil
}

func (s *refMCState) noteLive() {
	if live := len(s.queue) + len(s.running); live > s.res.MaxLive {
		s.res.MaxLive = live
	}
}

// emit traces one event tagged with q's class; callers guard on s.tr.
func (s *refMCState) emit(typ obs.EventType, now float64, q *refMCQuery, value float64) {
	s.tr.Event(obs.QueryEvent{
		Type: typ, Time: now, Query: q.id,
		Class: s.p.Classes[q.class].Name, Value: value,
	})
}

// pickClass draws a class index by weight.
func (s *refMCState) pickClass() int {
	u := s.rng.Float64()
	acc := 0.0
	for i, c := range s.p.Classes {
		acc += c.Weight
		if u < acc {
			return i
		}
	}
	return len(s.p.Classes) - 1
}

// classSprints reports whether class ci's sprint clause is active.
func (s *refMCState) classSprints(ci int) bool {
	//lint:ignore floateq per-class speedups are exactly 1 only via the no-sprint sentinel; ratios near 1 must keep sprinting
	return s.p.Classes[ci].Timeout >= 0 && s.p.BudgetSeconds > 0 && s.speedups[ci] != 1
}

func (s *refMCState) arrive() {
	now := s.eng.Now()
	id := s.arrived
	s.arrived++
	ci := s.pickClass()
	q := &refMCQuery{class: ci}
	q.id = id
	q.arrival = now
	q.service = s.p.Classes[ci].Service.Sample(s.rng)
	q.warm = id < s.p.Warmup
	if s.tr != nil {
		s.emit(obs.EvArrival, now, q, q.service)
	}
	s.queue = append(s.queue, q)
	s.noteLive()
	if s.classSprints(ci) {
		q.timeoutEv = s.eng.Schedule(now+s.p.Classes[ci].Timeout, func() { s.onTimeout(q) })
	}
	if s.arrived < s.p.NumQueries+s.p.Warmup {
		s.eng.After(s.arr.Sample(s.rng), s.arrive)
	}
	s.dispatch()
}

func (s *refMCState) dispatch() {
	now := s.eng.Now()
	for s.free > 0 && len(s.queue) > 0 {
		q := s.queue[0]
		s.queue = s.queue[1:]
		s.free--
		q.running = true
		q.start = now
		q.seg = now
		q.tau = 0
		s.running = append(s.running, q)
		if s.tr != nil {
			s.emit(obs.EvServiceStart, now, q, now-q.arrival)
		}
		if q.pending && s.acct.CanSprint(now) {
			s.engage(q)
		} else {
			q.departEv = s.eng.Schedule(now+q.service, func() { s.depart(q) })
		}
	}
}

func (s *refMCState) progress(q *refMCQuery, now float64) float64 {
	rate := 1.0
	if q.sprint {
		rate = s.speedups[q.class]
	}
	tau := q.tau + (now-q.seg)*rate/q.service
	return math.Min(tau, 1)
}

func (s *refMCState) onTimeout(q *refMCQuery) {
	now := s.eng.Now()
	if s.tr != nil {
		s.emit(obs.EvTimeout, now, q, s.p.Classes[q.class].Timeout)
	}
	if !q.running {
		q.pending = true
		return
	}
	if !q.sprint && s.acct.CanSprint(now) {
		q.tau = s.progress(q, now)
		q.seg = now
		s.engage(q)
	}
}

func (s *refMCState) engage(q *refMCQuery) {
	now := s.eng.Now()
	s.engages++
	if s.tr != nil {
		level := s.acct.Level(now)
		if s.exhausted {
			s.emit(obs.EvRefill, now, q, level)
		}
		s.emit(obs.EvSprintStart, now, q, level)
	}
	s.exhausted = false
	s.acct.StartSprint(now)
	q.sprint = true
	q.sprinted = true
	q.sprintStart = now
	remaining := (1 - q.tau) * q.service / s.speedups[q.class]
	if q.departEv != nil {
		s.eng.Cancel(q.departEv)
	}
	q.departEv = s.eng.Schedule(now+remaining, func() { s.depart(q) })
	s.replanBudget()
}

func (s *refMCState) replanBudget() {
	now := s.eng.Now()
	if s.budgetEv != nil {
		s.eng.Cancel(s.budgetEv)
		s.budgetEv = nil
	}
	tte := s.acct.TimeToEmpty(now)
	if math.IsInf(tte, 1) {
		return
	}
	s.budgetEv = s.eng.Schedule(now+tte, s.onBudgetEmpty)
}

func (s *refMCState) onBudgetEmpty() {
	now := s.eng.Now()
	s.budgetEv = nil
	s.exhaustions++
	s.exhausted = true
	if s.tr != nil {
		active := 0
		for _, q := range s.running {
			if q.sprint {
				active++
			}
		}
		s.tr.Event(obs.QueryEvent{Type: obs.EvBudgetExhausted, Time: now, Query: -1, Value: float64(active)})
	}
	for _, q := range s.running {
		if !q.sprint {
			continue
		}
		q.tau = s.progress(q, now)
		q.seg = now
		s.acct.StopSprint(now)
		q.sprint = false
		s.res.SprintSeconds += now - q.sprintStart
		if s.tr != nil {
			s.emit(obs.EvSprintStop, now, q, now-q.sprintStart)
		}
		remaining := (1 - q.tau) * q.service
		q.departEv = s.eng.Reschedule(q.departEv, now+remaining)
	}
	s.replanBudget()
}

func (s *refMCState) depart(q *refMCQuery) {
	now := s.eng.Now()
	s.res.Duration = now
	if q.sprint {
		s.acct.StopSprint(now)
		q.sprint = false
		s.res.SprintSeconds += now - q.sprintStart
		if s.tr != nil {
			s.emit(obs.EvSprintStop, now, q, now-q.sprintStart)
		}
		s.replanBudget()
	}
	if s.tr != nil {
		s.emit(obs.EvDeparture, now, q, now-q.arrival)
	}
	if q.timeoutEv != nil {
		s.eng.Cancel(q.timeoutEv)
		q.timeoutEv = nil
	}
	for i, rq := range s.running {
		if rq == q {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	q.running = false
	if !q.warm {
		rt := now - q.arrival
		s.res.RTs = append(s.res.RTs, rt)
		s.res.QueueingTimes = append(s.res.QueueingTimes, q.start-q.arrival)
		name := s.p.Classes[q.class].Name
		s.res.ByClass[name] = append(s.res.ByClass[name], rt)
		if q.sprinted {
			s.res.SprintedCount++
		}
	}
	s.free++
	s.dispatch()
}
