// Package queuesim implements the paper's timeout-aware queue simulator
// (Section 2.2, Algorithm 1): a G/G/k discrete-event simulation that
// understands sprint timeouts, budgets and refill, and models a sprint as
// a linear speedup on the query's remaining execution time (Equation 1):
//
//	depart = clock + (1 - tau) * s * mu / mu_e
//
// where s is the query's sampled service time, tau its completed-work
// fraction, mu the service rate and mu_e the (effective or marginal)
// sprint rate.
//
// This simulator is the first-principles half of the hybrid model. It
// deliberately knows nothing about phase behaviour, toggle overheads or
// load coupling — those runtime factors are what the effective sprint
// rate (internal/calib) and the random decision forest absorb.
//
// The paper's reference implementation steps a fine-resolution clock;
// this one schedules events, which is semantically equivalent (see
// tick_test.go for the cross-validation) and fast enough to answer the
// thousands of what-if queries policy exploration needs (Section 3.6).
package queuesim

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/sim"
	"mdsprint/internal/sprint"
	"mdsprint/internal/stats"
)

// Params configures one simulation.
type Params struct {
	// ArrivalRate in queries/second; ArrivalKind selects the family.
	ArrivalRate float64
	ArrivalKind dist.Kind
	// Arrival, when non-nil, overrides (ArrivalRate, ArrivalKind) with
	// an arbitrary interarrival distribution — the G in G/G/k.
	// ArrivalRate must still be set to the distribution's rate for
	// validation and reporting.
	Arrival dist.Dist
	// Service is the service-time distribution at the sustained rate,
	// typically an Empirical distribution resampling profiler
	// measurements ("we randomly sample service time data collected
	// during profiling", Section 2.2).
	Service dist.Dist
	// ServiceRate is mu in queries/second.
	ServiceRate float64
	// SprintRate is mu_e (hybrid model) or mu_m (No-ML baseline), in
	// queries/second.
	SprintRate float64
	// Timeout, BudgetSeconds, RefillTime define the sprinting policy.
	// A negative timeout disables sprinting.
	Timeout       float64
	BudgetSeconds float64
	RefillTime    float64
	// Refill selects the budget-refill semantics (continuous token
	// bucket by default; the paper's window-snap clause via
	// sprint.RefillWindow).
	Refill sprint.RefillMode
	// Slots is the execution-engine concurrency (default 1).
	Slots int
	// NumQueries measured per run (default 1000); Warmup excluded.
	NumQueries int
	Warmup     int
	Seed       uint64
	// Tracer, when non-nil, receives per-query lifecycle events
	// (arrival, service start, sprint start/stop, timeout, budget
	// exhaustion, refill, departure). A nil tracer skips every hook;
	// see BenchmarkSimulateOne for the enforced disabled-overhead
	// budget. A tracer shared across Predict replications must be safe
	// for concurrent use (obs.RingTracer is).
	Tracer obs.QueryTracer
	// Clock times the run for the flushed metrics (run seconds, event
	// rate). Simulation itself runs on virtual time and never reads it;
	// nil uses the real clock. Inject obs.ManualClock to keep measured
	// regions reproducible (the nondeterm analyzer forbids bare
	// time.Now in this package).
	Clock obs.Clock
}

func (p Params) withDefaults() Params {
	if p.Slots == 0 {
		p.Slots = 1
	}
	if p.NumQueries == 0 {
		p.NumQueries = 1000
	}
	if p.ArrivalKind == "" {
		p.ArrivalKind = dist.KindExponential
	}
	return p
}

// Canonical returns p with the simulator's defaults applied — the normal
// form under which two Params values configure the same simulation. A
// zero Slots and an explicit Slots=1 canonicalize identically, as do a
// zero and an explicit default NumQueries and an empty and an explicit
// exponential ArrivalKind. internal/sweep fingerprints Canonical()
// output so equivalent spellings memoize to one cache entry.
func (p Params) Canonical() Params { return p.withDefaults() }

func (p Params) validate() error {
	if p.ArrivalRate <= 0 || math.IsNaN(p.ArrivalRate) {
		return fmt.Errorf("queuesim: arrival rate %v must be positive", p.ArrivalRate)
	}
	if p.Service == nil {
		return fmt.Errorf("queuesim: service distribution required")
	}
	if p.ServiceRate <= 0 {
		return fmt.Errorf("queuesim: service rate %v must be positive", p.ServiceRate)
	}
	if p.SprintRate < 0 {
		return fmt.Errorf("queuesim: sprint rate %v must be non-negative", p.SprintRate)
	}
	if p.Slots < 0 || p.NumQueries < 0 || p.Warmup < 0 {
		return fmt.Errorf("queuesim: negative slots/queries/warmup")
	}
	return nil
}

// speedup returns the sprint processing-rate multiplier mu_e / mu. Values
// below 1 are allowed: a calibrated effective rate under the service rate
// expresses sprints whose runtime overheads (toggling under congestion)
// exceed their benefit, per Equation 2's unconstrained x. A floor of 0.1
// guards the arithmetic.
func (p Params) speedup() float64 {
	if p.SprintRate <= 0 {
		return 1
	}
	s := p.SprintRate / p.ServiceRate
	if s < 0.1 {
		return 0.1
	}
	return s
}

// sprintingEnabled mirrors the policy-disabling conventions of
// sprint.Policy. Note speedups below 1 keep sprinting "enabled": the
// mechanism still toggles, it just hurts.
func (p Params) sprintingEnabled() bool {
	//lint:ignore floateq speedup() yields exactly 1 as its no-sprint sentinel; ratios near 1 must keep the mechanism toggling
	return p.Timeout >= 0 && p.BudgetSeconds > 0 && p.speedup() != 1
}

// Result is one run's output.
type Result struct {
	// RTs are measured response times in arrival order.
	RTs []float64
	// QueueingTimes are the corresponding waits before dispatch.
	QueueingTimes []float64
	// SprintedCount is how many measured queries sprinted.
	SprintedCount int
	// SprintSeconds is the total budget consumed over the whole run
	// (including warmup), and Duration the virtual time of the last
	// departure. Together they tell a policy search whether a timeout
	// exhausts the budget (the Few-to-Many criterion).
	SprintSeconds float64
	Duration      float64
}

// BudgetSupply returns the total sprint-seconds the policy made available
// over the run: initial capacity plus refill accrual.
func (r *Result) BudgetSupply(p Params) float64 {
	return p.BudgetSeconds + refillRate(p)*r.Duration
}

// BudgetUtilization returns the fraction of the available budget the run
// consumed, in [0, 1].
func (r *Result) BudgetUtilization(p Params) float64 {
	supply := r.BudgetSupply(p)
	if supply <= 0 {
		return 0
	}
	u := r.SprintSeconds / supply
	if u > 1 {
		u = 1
	}
	return u
}

// MeanRT returns the run's mean response time.
func (r *Result) MeanRT() float64 { return stats.Mean(r.RTs) }

// query is Algorithm 1's query object.
type query struct {
	id          int
	arrival     float64
	service     float64
	start       float64
	tau         float64 // progress at segment start
	seg         float64 // segment start time
	sprint      bool
	sprintStart float64
	pending     bool
	warm        bool

	departEv  *sim.Event
	timeoutEv *sim.Event
	running   bool
	sprinted  bool
}

// state is the running simulation.
type state struct {
	p       Params
	eng     *sim.Engine
	rng     *dist.RNG
	arr     dist.Dist
	acct    *sprint.Accountant
	speedup float64
	tr      obs.QueryTracer // nil when tracing is off

	queue    []*query
	running  []*query
	free     int
	budgetEv *sim.Event

	arrived int
	// engages and exhaustions feed the end-of-run metric flush;
	// exhausted marks that the budget has drained since the last
	// engagement, so the next engagement can emit a refill event.
	engages     int
	exhaustions int
	exhausted   bool
	res         Result
}

// simMetrics are the queue simulator's process-wide metrics in the
// default registry. Simulators accumulate locally and flush once per run,
// keeping the event loop free of shared-memory traffic.
var simMetrics = struct {
	runs, queries, events *obs.Counter
	sprints, exhaustions  *obs.Counter
	eventsPerSec          *obs.Gauge
	runSeconds            *obs.Histogram
}{
	runs:         obs.Default().Counter("mdsprint_sim_runs_total", "completed queue-simulator runs"),
	queries:      obs.Default().Counter("mdsprint_sim_queries_total", "queries simulated (including warmup)"),
	events:       obs.Default().Counter("mdsprint_sim_events_total", "discrete events fired by the simulator engine"),
	sprints:      obs.Default().Counter("mdsprint_sim_sprints_total", "sprints engaged"),
	exhaustions:  obs.Default().Counter("mdsprint_sim_budget_exhaustions_total", "budget-exhaustion episodes"),
	eventsPerSec: obs.Default().Gauge("mdsprint_sim_events_per_second", "engine event rate of the most recent run"),
	runSeconds:   obs.Default().Histogram("mdsprint_sim_run_seconds", "wall-clock seconds per simulator run", 0),
}

// flushMetrics records one finished run's totals.
func flushMetrics(queries, fired, engages, exhaustions int, elapsed float64) {
	simMetrics.runs.Inc()
	simMetrics.queries.Add(float64(queries))
	simMetrics.events.Add(float64(fired))
	simMetrics.sprints.Add(float64(engages))
	simMetrics.exhaustions.Add(float64(exhaustions))
	simMetrics.runSeconds.Observe(elapsed)
	if elapsed > 0 {
		simMetrics.eventsPerSec.Set(float64(fired) / elapsed)
	}
}

// Run simulates the configured queue and returns measured response times.
func Run(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	arr := p.Arrival
	if arr == nil {
		arr = dist.ForRate(p.ArrivalKind, p.ArrivalRate)
	}
	var acctOpts []sprint.AccountantOption
	switch p.Refill {
	case sprint.RefillPaused:
		acctOpts = append(acctOpts, sprint.WithPausedRefill())
	case sprint.RefillWindow:
		if p.RefillTime > 0 {
			acctOpts = append(acctOpts, sprint.WithWindowRefill(p.RefillTime))
		}
	}
	s := &state{
		p:       p,
		eng:     sim.New(),
		rng:     dist.NewRNG(p.Seed),
		arr:     arr,
		acct:    sprint.NewAccountant(p.BudgetSeconds, refillRate(p), acctOpts...),
		speedup: p.speedup(),
		tr:      p.Tracer,
		free:    p.Slots,
	}
	total := p.NumQueries + p.Warmup
	if total == 0 {
		return &s.res, nil
	}
	s.res.RTs = make([]float64, 0, p.NumQueries)
	s.res.QueueingTimes = make([]float64, 0, p.NumQueries)
	s.eng.Schedule(s.arr.Sample(s.rng), s.arrive)
	clk := obs.ClockOr(p.Clock)
	start := clk.Now()
	fired := s.eng.RunAll()
	flushMetrics(total, fired, s.engages, s.exhaustions, clk.Now().Sub(start).Seconds())
	return &s.res, nil
}

// MustRun is Run for static parameters; it panics on error.
func MustRun(p Params) *Result {
	r, err := Run(p)
	if err != nil {
		panic(err)
	}
	return r
}

func refillRate(p Params) float64 {
	if p.RefillTime <= 0 {
		return 0
	}
	return p.BudgetSeconds / p.RefillTime
}

func (s *state) arrive() {
	now := s.eng.Now()
	id := s.arrived
	s.arrived++
	q := &query{
		id:      id,
		arrival: now,
		service: s.p.Service.Sample(s.rng),
		warm:    id < s.p.Warmup,
	}
	if s.tr != nil {
		s.tr.Event(obs.QueryEvent{Type: obs.EvArrival, Time: now, Query: q.id, Value: q.service})
	}
	s.queue = append(s.queue, q)
	if s.p.sprintingEnabled() {
		q.timeoutEv = s.eng.Schedule(now+s.p.Timeout, func() { s.onTimeout(q) })
	}
	if s.arrived < s.p.NumQueries+s.p.Warmup {
		s.eng.After(s.arr.Sample(s.rng), s.arrive)
	}
	s.dispatch()
}

func (s *state) dispatch() {
	now := s.eng.Now()
	for s.free > 0 && len(s.queue) > 0 {
		q := s.queue[0]
		s.queue = s.queue[1:]
		s.free--
		q.running = true
		q.start = now
		q.seg = now
		q.tau = 0
		s.running = append(s.running, q)
		if s.tr != nil {
			s.tr.Event(obs.QueryEvent{Type: obs.EvServiceStart, Time: now, Query: q.id, Value: now - q.arrival})
		}
		if q.pending && s.acct.CanSprint(now) {
			s.engage(q)
		} else {
			q.departEv = s.eng.Schedule(now+q.service, func() { s.depart(q) })
		}
	}
}

// progress rolls q's completed-work fraction forward to now.
func (s *state) progress(q *query, now float64) float64 {
	rate := 1.0
	if q.sprint {
		rate = s.speedup
	}
	tau := q.tau + (now-q.seg)*rate/q.service
	return math.Min(tau, 1)
}

func (s *state) onTimeout(q *query) {
	now := s.eng.Now()
	if s.tr != nil {
		s.tr.Event(obs.QueryEvent{Type: obs.EvTimeout, Time: now, Query: q.id, Value: s.p.Timeout})
	}
	if !q.running {
		q.pending = true
		return
	}
	if !q.sprint && s.acct.CanSprint(now) {
		q.tau = s.progress(q, now)
		q.seg = now
		s.engage(q)
	}
}

// engage applies Equation 1: the remaining execution shrinks by mu/mu_e.
func (s *state) engage(q *query) {
	now := s.eng.Now()
	s.engages++
	if s.tr != nil {
		level := s.acct.Level(now)
		if s.exhausted {
			s.tr.Event(obs.QueryEvent{Type: obs.EvRefill, Time: now, Query: q.id, Value: level})
		}
		s.tr.Event(obs.QueryEvent{Type: obs.EvSprintStart, Time: now, Query: q.id, Value: level})
	}
	s.exhausted = false
	s.acct.StartSprint(now)
	q.sprint = true
	q.sprinted = true
	q.sprintStart = now
	remaining := (1 - q.tau) * q.service / s.speedup
	if q.departEv != nil {
		s.eng.Cancel(q.departEv)
	}
	q.departEv = s.eng.Schedule(now+remaining, func() { s.depart(q) })
	s.replanBudget()
}

func (s *state) replanBudget() {
	now := s.eng.Now()
	if s.budgetEv != nil {
		s.eng.Cancel(s.budgetEv)
		s.budgetEv = nil
	}
	tte := s.acct.TimeToEmpty(now)
	if math.IsInf(tte, 1) {
		return
	}
	s.budgetEv = s.eng.Schedule(now+tte, s.onBudgetEmpty)
}

func (s *state) onBudgetEmpty() {
	now := s.eng.Now()
	s.budgetEv = nil
	s.exhaustions++
	s.exhausted = true
	if s.tr != nil {
		active := 0
		for _, q := range s.running {
			if q.sprint {
				active++
			}
		}
		s.tr.Event(obs.QueryEvent{Type: obs.EvBudgetExhausted, Time: now, Query: -1, Value: float64(active)})
	}
	for _, q := range s.running {
		if !q.sprint {
			continue
		}
		q.tau = s.progress(q, now)
		q.seg = now
		s.acct.StopSprint(now)
		q.sprint = false
		s.res.SprintSeconds += now - q.sprintStart
		if s.tr != nil {
			s.tr.Event(obs.QueryEvent{Type: obs.EvSprintStop, Time: now, Query: q.id, Value: now - q.sprintStart})
		}
		remaining := (1 - q.tau) * q.service
		q.departEv = s.eng.Reschedule(q.departEv, now+remaining)
	}
	s.replanBudget()
}

func (s *state) depart(q *query) {
	now := s.eng.Now()
	s.res.Duration = now
	if q.sprint {
		s.acct.StopSprint(now)
		q.sprint = false
		s.res.SprintSeconds += now - q.sprintStart
		if s.tr != nil {
			s.tr.Event(obs.QueryEvent{Type: obs.EvSprintStop, Time: now, Query: q.id, Value: now - q.sprintStart})
		}
		s.replanBudget()
	}
	if s.tr != nil {
		s.tr.Event(obs.QueryEvent{Type: obs.EvDeparture, Time: now, Query: q.id, Value: now - q.arrival})
	}
	if q.timeoutEv != nil {
		s.eng.Cancel(q.timeoutEv)
		q.timeoutEv = nil
	}
	for i, rq := range s.running {
		if rq == q {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	q.running = false
	if !q.warm {
		s.res.RTs = append(s.res.RTs, now-q.arrival)
		s.res.QueueingTimes = append(s.res.QueueingTimes, q.start-q.arrival)
		if q.sprinted {
			s.res.SprintedCount++
		}
	}
	s.free++
	s.dispatch()
}

// Prediction summarises replicated simulations of one scenario.
type Prediction struct {
	MeanRT float64
	P95RT  float64
	P99RT  float64
	// Replications and QueriesSimulated record the prediction's cost.
	Replications     int
	QueriesSimulated int
}

// Predict runs reps independent replications (in parallel across at most
// workers goroutines; 0 means NumCPU) and pools their response times.
// This is the prediction primitive behind Figure 11's throughput study.
func Predict(p Params, reps, workers int) (Prediction, error) {
	if err := p.validate(); err != nil {
		return Prediction{}, err
	}
	if reps <= 0 {
		reps = 1
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > reps {
		workers = reps
	}
	all := make([][]float64, reps)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < reps; i++ {
		wg.Add(1)
		//lint:ignore ctxleak bounded fork-join: replications always complete and are joined before Predict returns
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pi := p
			pi.Seed = p.Seed + uint64(i)*0x9e3779b97f4a7c15
			res := MustRun(pi)
			all[i] = res.RTs
		}(i)
	}
	wg.Wait()
	pooled := make([]float64, 0, reps*p.NumQueries)
	for _, rts := range all {
		pooled = append(pooled, rts...)
	}
	sum := stats.Summarize(pooled)
	return Prediction{
		MeanRT:           sum.Mean,
		P95RT:            sum.P95,
		P99RT:            sum.P99,
		Replications:     reps,
		QueriesSimulated: len(pooled),
	}, nil
}
