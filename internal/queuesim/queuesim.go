// Package queuesim implements the paper's timeout-aware queue simulator
// (Section 2.2, Algorithm 1): a G/G/k discrete-event simulation that
// understands sprint timeouts, budgets and refill, and models a sprint as
// a linear speedup on the query's remaining execution time (Equation 1):
//
//	depart = clock + (1 - tau) * s * mu / mu_e
//
// where s is the query's sampled service time, tau its completed-work
// fraction, mu the service rate and mu_e the (effective or marginal)
// sprint rate.
//
// This simulator is the first-principles half of the hybrid model. It
// deliberately knows nothing about phase behaviour, toggle overheads or
// load coupling — those runtime factors are what the effective sprint
// rate (internal/calib) and the random decision forest absorb.
//
// The paper's reference implementation steps a fine-resolution clock;
// this one schedules events, which is semantically equivalent (see
// tick_test.go for the cross-validation) and fast enough to answer the
// thousands of what-if queries policy exploration needs (Section 3.6).
//
// Because every consumer — calibration bisection, the sweep engine, the
// annealing search, colocation packing — bottoms out in millions of Run
// calls, the hot path is allocation-free: queries live in a slab pool
// addressed by index, events in sim.PooledEngine's slot pool addressed by
// generation-checked handles, the FIFO is a ring buffer, and a reusable
// Runner carries every buffer (including the RNG and budget accountant)
// across runs. Steady state simulates a query with zero heap allocations
// (enforced by TestRunnerZeroAllocsPerQuery). The original
// heap-and-closure implementation is preserved in reference.go, and the
// differential suite proves the two produce bit-identical results.
package queuesim

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/sim"
	"mdsprint/internal/sprint"
	"mdsprint/internal/stats"
)

// Params configures one simulation.
type Params struct {
	// ArrivalRate in queries/second; ArrivalKind selects the family.
	ArrivalRate float64
	ArrivalKind dist.Kind
	// Arrival, when non-nil, overrides (ArrivalRate, ArrivalKind) with
	// an arbitrary interarrival distribution — the G in G/G/k.
	// ArrivalRate must still be set to the distribution's rate for
	// validation and reporting.
	Arrival dist.Dist
	// Service is the service-time distribution at the sustained rate,
	// typically an Empirical distribution resampling profiler
	// measurements ("we randomly sample service time data collected
	// during profiling", Section 2.2).
	Service dist.Dist
	// ServiceRate is mu in queries/second.
	ServiceRate float64
	// SprintRate is mu_e (hybrid model) or mu_m (No-ML baseline), in
	// queries/second.
	SprintRate float64
	// Timeout, BudgetSeconds, RefillTime define the sprinting policy.
	// A negative timeout disables sprinting.
	Timeout       float64
	BudgetSeconds float64
	RefillTime    float64
	// Refill selects the budget-refill semantics (continuous token
	// bucket by default; the paper's window-snap clause via
	// sprint.RefillWindow).
	Refill sprint.RefillMode
	// Slots is the execution-engine concurrency (default 1). With
	// Servers > 1 every server gets its own Slots execution slots.
	Slots int
	// Discipline selects the ready-queue ordering (FIFO by default; see
	// ParseDiscipline for the spec grammar). The PS discipline requires
	// sprinting disabled.
	Discipline Discipline
	// Servers fans arrivals across that many independent queue+slot
	// groups (default 1), each running the same Discipline but all
	// sharing one sprint budget Accountant. Servers > 1 requires a
	// Dispatch policy.
	Servers int
	// Dispatch routes each arrival to a server when Servers > 1 (see
	// internal/queuesim/dispatch for the catalog). Ignored — and
	// dropped by Canonical — when Servers <= 1.
	Dispatch Dispatcher
	// NumQueries measured per run (default 1000); Warmup excluded.
	NumQueries int
	Warmup     int
	Seed       uint64
	// Tracer, when non-nil, receives per-query lifecycle events
	// (arrival, service start, sprint start/stop, timeout, budget
	// exhaustion, refill, departure). A nil tracer skips every hook;
	// see BenchmarkSimulateOne for the enforced disabled-overhead
	// budget. A tracer shared across Predict replications must be safe
	// for concurrent use (obs.RingTracer is).
	Tracer obs.QueryTracer
	// Clock times the run for the flushed metrics (run seconds, event
	// rate). Simulation itself runs on virtual time and never reads it;
	// nil uses the real clock. Inject obs.ManualClock to keep measured
	// regions reproducible (the nondeterm analyzer forbids bare
	// time.Now in this package).
	Clock obs.Clock
}

func (p Params) withDefaults() Params {
	if p.Slots == 0 {
		p.Slots = 1
	}
	if p.NumQueries == 0 {
		p.NumQueries = 1000
	}
	if p.ArrivalKind == "" {
		p.ArrivalKind = dist.KindExponential
	}
	p.Discipline = p.Discipline.canonical()
	if p.Servers == 0 {
		p.Servers = 1
	}
	if p.Servers <= 1 {
		p.Dispatch = nil
	}
	return p
}

// Canonical returns p with the simulator's defaults applied — the normal
// form under which two Params values configure the same simulation. A
// zero Slots and an explicit Slots=1 canonicalize identically, as do a
// zero and an explicit default NumQueries and an empty and an explicit
// exponential ArrivalKind. internal/sweep fingerprints Canonical()
// output so equivalent spellings memoize to one cache entry.
func (p Params) Canonical() Params { return p.withDefaults() }

func (p Params) validate() error {
	if p.ArrivalRate <= 0 || math.IsNaN(p.ArrivalRate) {
		return fmt.Errorf("queuesim: arrival rate %v must be positive", p.ArrivalRate)
	}
	if p.Service == nil {
		return fmt.Errorf("queuesim: service distribution required")
	}
	if p.ServiceRate <= 0 {
		return fmt.Errorf("queuesim: service rate %v must be positive", p.ServiceRate)
	}
	if p.SprintRate < 0 {
		return fmt.Errorf("queuesim: sprint rate %v must be non-negative", p.SprintRate)
	}
	if p.Slots < 0 || p.NumQueries < 0 || p.Warmup < 0 {
		return fmt.Errorf("queuesim: negative slots/queries/warmup")
	}
	if err := p.Discipline.validate(); err != nil {
		return err
	}
	if p.Discipline.canonical().Kind == DiscPS && p.sprintingEnabled() {
		return fmt.Errorf("queuesim: the ps discipline does not support sprinting (disable the timeout or budget)")
	}
	if p.Servers < 0 {
		return fmt.Errorf("queuesim: negative servers %d", p.Servers)
	}
	if p.Servers > 1 && p.Dispatch == nil {
		return fmt.Errorf("queuesim: servers=%d requires a dispatch policy", p.Servers)
	}
	return nil
}

// speedup returns the sprint processing-rate multiplier mu_e / mu. Values
// below 1 are allowed: a calibrated effective rate under the service rate
// expresses sprints whose runtime overheads (toggling under congestion)
// exceed their benefit, per Equation 2's unconstrained x. A floor of 0.1
// guards the arithmetic.
func (p Params) speedup() float64 {
	if p.SprintRate <= 0 {
		return 1
	}
	s := p.SprintRate / p.ServiceRate
	if s < 0.1 {
		return 0.1
	}
	return s
}

// Sprinting reports whether this configuration's sprint mechanism is
// live — a non-negative timeout, a positive budget, and a sprint rate
// that actually changes the processing rate. Surrogate layers
// (internal/queuesim/analytic) use it as an applicability gate: closed
// forms only describe the no-sprint queue.
func (p Params) Sprinting() bool { return p.sprintingEnabled() }

// sprintingEnabled mirrors the policy-disabling conventions of
// sprint.Policy. Note speedups below 1 keep sprinting "enabled": the
// mechanism still toggles, it just hurts.
func (p Params) sprintingEnabled() bool {
	//lint:ignore floateq speedup() yields exactly 1 as its no-sprint sentinel; ratios near 1 must keep the mechanism toggling
	return p.Timeout >= 0 && p.BudgetSeconds > 0 && p.speedup() != 1
}

// Result is one run's output.
type Result struct {
	// RTs are measured response times in departure order (which is
	// arrival order for a single-slot FIFO queue, but not for multiple
	// slots or the reordering disciplines).
	RTs []float64
	// QueueingTimes are the corresponding waits before first dispatch,
	// paired index-by-index with RTs.
	QueueingTimes []float64
	// SprintedCount is how many measured queries sprinted.
	SprintedCount int
	// SprintSeconds is the total budget consumed over the whole run
	// (including warmup), and Duration the virtual time of the last
	// departure. Together they tell a policy search whether a timeout
	// exhausts the budget (the Few-to-Many criterion).
	SprintSeconds float64
	Duration      float64
	// Engages counts sprint engagements and Exhaustions budget-drain
	// episodes over the whole run (including warmup) — the counters the
	// simulator also flushes to the metrics registry.
	Engages     int
	Exhaustions int
	// Preemptions counts mid-service displacements over the whole run —
	// nonzero only under the preemptive disciplines (SRPT, SERPT).
	Preemptions int
	// MaxLive is the query pool's high-water mark: the largest number of
	// queries simultaneously resident (queued + in service). It bounds
	// the simulator's working set — departed queries are recycled, never
	// retained for the rest of the run.
	MaxLive int
}

// BudgetSupply returns the total sprint-seconds the policy made available
// over the run: initial capacity plus refill accrual.
func (r *Result) BudgetSupply(p Params) float64 {
	return p.BudgetSeconds + refillRate(p)*r.Duration
}

// BudgetUtilization returns the fraction of the available budget the run
// consumed, in [0, 1].
func (r *Result) BudgetUtilization(p Params) float64 {
	supply := r.BudgetSupply(p)
	if supply <= 0 {
		return 0
	}
	u := r.SprintSeconds / supply
	if u > 1 {
		u = 1
	}
	return u
}

// MeanRT returns the run's mean response time.
func (r *Result) MeanRT() float64 { return stats.Mean(r.RTs) }

// simMetrics are the queue simulator's process-wide metrics in the
// default registry. Simulators accumulate locally and flush once per run,
// keeping the event loop free of shared-memory traffic.
var simMetrics = struct {
	runs, queries, events *obs.Counter
	sprints, exhaustions  *obs.Counter
	eventsPerSec          *obs.Gauge
	runSeconds            *obs.Histogram
}{
	runs:         obs.Default().Counter("mdsprint_sim_runs_total", "completed queue-simulator runs"),
	queries:      obs.Default().Counter("mdsprint_sim_queries_total", "queries simulated (including warmup)"),
	events:       obs.Default().Counter("mdsprint_sim_events_total", "discrete events fired by the simulator engine"),
	sprints:      obs.Default().Counter("mdsprint_sim_sprints_total", "sprints engaged"),
	exhaustions:  obs.Default().Counter("mdsprint_sim_budget_exhaustions_total", "budget-exhaustion episodes"),
	eventsPerSec: obs.Default().Gauge("mdsprint_sim_events_per_second", "engine event rate of the most recent run"),
	runSeconds:   obs.Default().Histogram("mdsprint_sim_run_seconds", "wall-clock seconds per simulator run", 0),
}

// flushMetrics records one finished run's totals.
func flushMetrics(queries, fired, engages, exhaustions int, elapsed float64) {
	simMetrics.runs.Inc()
	simMetrics.queries.Add(float64(queries))
	simMetrics.events.Add(float64(fired))
	simMetrics.sprints.Add(float64(engages))
	simMetrics.exhaustions.Add(float64(exhaustions))
	simMetrics.runSeconds.Observe(elapsed)
	if elapsed > 0 {
		simMetrics.eventsPerSec.Set(float64(fired) / elapsed)
	}
}

func refillRate(p Params) float64 {
	if p.RefillTime <= 0 {
		return 0
	}
	return p.BudgetSeconds / p.RefillTime
}

// seedStride spaces per-replication seeds: rep i runs with
// Seed + i*seedStride (the splitmix64 golden-gamma increment), matching
// the derivation RunReps, Predict and calib's dataset sharding all use.
const seedStride = 0x9e3779b97f4a7c15

// repSeed derives replication i's seed from the base seed.
func repSeed(base uint64, i int) uint64 {
	return base + uint64(i)*seedStride
}

// query is Algorithm 1's query object, pooled: queries live in a Runner's
// slab and are addressed by index. Event handles are generation-checked,
// so the handles of fired or cancelled events held here go harmlessly
// stale.
type query struct {
	arrival     float64
	service     float64
	pred        float64 // SERPT's noisy service-time prediction
	start       float64
	tau         float64 // progress at segment start
	seg         float64 // segment start time
	sprintStart float64
	key         float64 // ready-heap ordering key (ordered disciplines)

	departEv  sim.Handle
	timeoutEv sim.Handle

	id    int32
	class int32
	srv   int32 // server this query was dispatched to
	tie   int32 // ready-heap tie-break

	sprint   bool
	pending  bool
	warm     bool
	running  bool
	sprinted bool
	started  bool // service has begun at least once (preemption-aware)
	toFired  bool // sprint timeout has fired (re-arms pending on preemption)
}

// ringQ is a growable FIFO ring buffer of query-pool indices. It replaces
// the old head-shifting slice (s.queue = s.queue[1:]), which pinned every
// departed query in the backing array for the whole run; the ring reuses
// its buffer and holds only the currently waiting queries.
type ringQ struct {
	buf  []int32
	head int
	n    int
}

func (q *ringQ) reset()   { q.head, q.n = 0, 0 }
func (q *ringQ) len() int { return q.n }

func (q *ringQ) push(v int32) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

func (q *ringQ) pop() int32 {
	v := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v
}

func (q *ringQ) grow() {
	size := 2 * len(q.buf)
	if size < 8 {
		size = 8
	}
	//lint:ignore hotalloc geometric ring growth, amortized O(1); capacity persists across replays (AllocsPerRun pins the steady state)
	nb := make([]int32, size)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = nb, 0
}

// classCfg is one query class's precomputed configuration. Run uses a
// single class; RunMulti one per ClassParams.
type classCfg struct {
	name     string
	weight   float64
	service  dist.Dist
	timeout  float64
	speedup  float64
	sprintOn bool
}

// Runner is a reusable simulator instance. Every internal buffer — the
// event slab and index heap (sim.PooledEngine), the query pool, the FIFO
// ring, the running set, the RNG and the budget accountant — persists
// across runs, so replaying simulations back to back performs zero
// steady-state heap allocations per simulated query. A Runner is not safe
// for concurrent use; run one per goroutine. The zero value is ready to
// use.
type Runner struct {
	eng      *sim.PooledEngine
	cbArrive sim.CallbackID
	cbTimeou sim.CallbackID
	cbDepart sim.CallbackID
	cbBudget sim.CallbackID
	cbPSDep  sim.CallbackID

	rng  dist.RNG
	acct sprint.Accountant

	pool       []query
	qfree      []int32
	running    []int32
	qlive      int
	qHighWater int

	// Per-server state, sized by sizeServers: the FIFO rings (unordered
	// disciplines), ready heaps (ordered disciplines), free execution
	// slots, resident-query counts, and PS's pending departure event
	// and current sharing rate. All capacity persists across runs.
	queues  []ringQ
	heaps   []qHeap
	srvFree []int32
	srvLive []int32
	psEv    []sim.Handle
	psRate  []float64

	// arrival-distribution cache: repeated runs with the same
	// (ArrivalKind, ArrivalRate) and no explicit Arrival reuse one
	// boxed distribution instead of rebuilding it per run.
	arrKind   dist.Kind
	arrRate   float64
	arrCached dist.Dist

	// SERPT prediction-noise cache: one boxed lognormal per CV, drawn
	// from its own RNG stream so the main draw sequence (arrivals,
	// services) is identical across disciplines.
	predCV   float64
	predDist dist.Dist
	predRNG  dist.RNG

	arr       dist.Dist
	classes   []classCfg
	tr        obs.QueryTracer
	multi     bool
	drawClass bool

	disc     Discipline
	ordered  bool // heap-ordered ready queue (lifo/srpt/serpt)
	preempt  bool // preemptive discipline (srpt/serpt)
	servers  int
	slotsPer int
	dispatch Dispatcher
	dstate   DispatchState

	warmup      int
	total       int
	budgetEv    sim.Handle
	arrived     int
	engages     int
	exhaustions int
	preempts    int
	exhausted   bool

	res  *Result
	mres *MultiResult
}

// NewRunner returns an empty reusable runner.
func NewRunner() *Runner { return &Runner{} }

// runnerPool recycles Runners across the package-level entry points (Run,
// RunReps, Predict, RunMulti), so sweep batches and calibration searches
// reuse warmed slabs across tasks. Pool reuse only affects buffer
// capacity, never results: every run fully reinitializes the runner from
// its Params.
var runnerPool = sync.Pool{New: func() any { return NewRunner() }}

func getRunner() *Runner  { return runnerPool.Get().(*Runner) }
func putRunner(r *Runner) { runnerPool.Put(r) }

// resetCore reinitializes the engine and every pooled buffer, keeping
// capacity. Callbacks are registered once, on first use.
func (r *Runner) resetCore() {
	if r.eng == nil {
		r.eng = sim.NewPooled()
		//lint:ignore hotalloc callbacks are registered once per Runner lifetime, amortized across every replay
		r.cbArrive = r.eng.Register(func(int32) { r.arrive() })
		r.cbTimeou = r.eng.Register(r.onTimeout)
		r.cbDepart = r.eng.Register(r.depart)
		//lint:ignore hotalloc same once-per-Runner registration as above
		r.cbBudget = r.eng.Register(func(int32) { r.onBudgetEmpty() })
		r.cbPSDep = r.eng.Register(r.psDepart)
	} else {
		r.eng.Reset()
	}
	r.pool = r.pool[:0]
	r.qfree = r.qfree[:0]
	r.running = r.running[:0]
	r.qlive = 0
	r.qHighWater = 0
	r.budgetEv = sim.Handle{}
	r.arrived = 0
	r.engages = 0
	r.exhaustions = 0
	r.preempts = 0
	r.exhausted = false
}

// configureDiscipline installs the run's discipline, server count and
// dispatcher, sizing (capacity-preserving) and resetting every per-server
// buffer. slots is the per-server slot count; callers pass defaults-applied
// values.
func (r *Runner) configureDiscipline(d Discipline, servers, slots int, dispatch Dispatcher, seed uint64) {
	r.disc = d
	r.ordered = d.Kind == DiscLIFO || d.Kind == DiscSRPT || d.Kind == DiscSERPT
	r.preempt = d.Kind == DiscSRPT || d.Kind == DiscSERPT
	r.servers = servers
	r.slotsPer = slots
	r.dispatch = nil
	if servers > 1 {
		r.dispatch = dispatch
	}
	r.dstate = DispatchState{RNG: &r.rng}
	for len(r.queues) < servers {
		r.queues = append(r.queues, ringQ{})
		r.heaps = append(r.heaps, qHeap{})
		r.srvFree = append(r.srvFree, 0)
		r.srvLive = append(r.srvLive, 0)
		r.psEv = append(r.psEv, sim.Handle{})
		r.psRate = append(r.psRate, 1)
	}
	for s := 0; s < servers; s++ {
		r.queues[s].reset()
		r.heaps[s].reset()
		r.srvFree[s] = int32(slots)
		r.srvLive[s] = 0
		r.psEv[s] = sim.Handle{}
		r.psRate[s] = 1
	}
	if d.Kind == DiscSERPT {
		r.predRNG.Reseed(seed ^ serptSeedSalt)
		cv := d.PredictCV
		if cv <= 0 {
			r.predDist = nil
			//lint:ignore floateq the noise cache key must match the CV exactly; a near-match would silently change the prediction process
		} else if r.predDist == nil || r.predCV != cv {
			r.predDist = dist.LogNormalFromMeanCV(1, cv)
			r.predCV = cv
		}
	}
}

// serptSeedSalt separates SERPT's prediction-noise stream from the run's
// main RNG, so the arrival/service draw sequence is identical across
// disciplines ("SERP" in ASCII, extended to 64 bits).
const serptSeedSalt = 0x53455250_9e3779b9

// arrivalFor resolves the interarrival distribution, reusing the cached
// boxed value when the family and rate are unchanged from the last run.
func (r *Runner) arrivalFor(p Params) dist.Dist {
	if p.Arrival != nil {
		return p.Arrival
	}
	//lint:ignore floateq the cache key must match the rate exactly; a near-match would silently change the arrival process
	if r.arrCached != nil && r.arrKind == p.ArrivalKind && r.arrRate == p.ArrivalRate {
		return r.arrCached
	}
	d := dist.ForRate(p.ArrivalKind, p.ArrivalRate)
	r.arrKind, r.arrRate, r.arrCached = p.ArrivalKind, p.ArrivalRate, d
	return d
}

// sizedFloats returns s emptied for appending n values without growth.
func sizedFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		//lint:ignore hotalloc first-run sizing; steady-state replay takes the capacity-reuse branch below
		return make([]float64, 0, n)
	}
	return s[:0]
}

// Run simulates p, writing the result into out. Slices already present in
// out are reused (truncated and appended in place) when their capacity
// suffices, so a caller replaying simulations with one Runner and one
// Result allocates nothing in steady state. On error out is untouched.
//
//sprint:hotpath steady-state replay must not allocate (TestRunnerRunIntoAllocFree)
func (r *Runner) RunInto(p Params, out *Result) error {
	if err := p.validate(); err != nil {
		return err
	}
	p = p.withDefaults()
	total := p.NumQueries + p.Warmup
	if total == 0 {
		*out = Result{}
		return nil
	}
	r.resetCore()
	r.rng.Reseed(p.Seed)
	r.arr = r.arrivalFor(p)
	r.acct.Reset(p.BudgetSeconds, refillRate(p), p.Refill, p.RefillTime)
	r.tr = p.Tracer
	r.multi = false
	r.drawClass = false
	r.classes = append(r.classes[:0], classCfg{
		service:  p.Service,
		timeout:  p.Timeout,
		speedup:  p.speedup(),
		sprintOn: p.sprintingEnabled(),
	})
	r.configureDiscipline(p.Discipline, p.Servers, p.Slots, p.Dispatch, p.Seed)
	r.warmup = p.Warmup
	r.total = total

	out.RTs = sizedFloats(out.RTs, p.NumQueries)
	out.QueueingTimes = sizedFloats(out.QueueingTimes, p.NumQueries)
	out.SprintedCount = 0
	out.SprintSeconds = 0
	out.Duration = 0
	out.Engages = 0
	out.Exhaustions = 0
	out.Preemptions = 0
	out.MaxLive = 0
	r.res = out
	r.mres = nil

	r.eng.Schedule(r.arr.Sample(&r.rng), r.cbArrive, 0)
	clk := obs.ClockOr(p.Clock)
	start := clk.Now()
	fired := r.eng.RunAll()
	out.Engages = r.engages
	out.Exhaustions = r.exhaustions
	out.Preemptions = r.preempts
	out.MaxLive = r.qHighWater
	flushMetrics(total, fired, r.engages, r.exhaustions, clk.Now().Sub(start).Seconds())
	r.res = nil
	return nil
}

// Run simulates p on this runner and returns a freshly allocated result.
func (r *Runner) Run(p Params) (*Result, error) {
	res := &Result{}
	if err := r.RunInto(p, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Run simulates the configured queue and returns measured response times.
func Run(p Params) (*Result, error) {
	r := getRunner()
	defer putRunner(r)
	return r.Run(p)
}

// MustRun is Run for static parameters; it panics on error.
func MustRun(p Params) *Result {
	r, err := Run(p)
	if err != nil {
		panic(err)
	}
	return r
}

// RunReps runs reps serial replications of p on one reusable runner,
// deriving replication i's seed as Seed + i*seedStride — exactly the
// common-random-numbers derivation Predict uses — and returns the
// per-replication results. Only the returned Result slice (and, on the
// first use of each slot, its vectors) is freshly allocated; callers
// that keep the slice across calls should use RunRepsInto, which
// reaches zero steady-state allocations.
func RunReps(p Params, reps int) ([]Result, error) {
	if reps <= 0 {
		reps = 1
	}
	out := make([]Result, reps)
	if err := RunRepsInto(p, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunRepsInto is RunReps writing replication i into out[i], reusing
// each slot's RTs/QueueingTimes capacity. One pooled runner serves all
// replications, so a caller holding the slice across calls runs entire
// multi-replication predictions with zero steady-state allocations —
// for every discipline, including the heap-ordered ones.
func RunRepsInto(p Params, out []Result) error {
	if err := p.validate(); err != nil {
		return err
	}
	if len(out) == 0 {
		return fmt.Errorf("queuesim: RunRepsInto needs at least one output slot")
	}
	r := getRunner()
	defer putRunner(r)
	for i := range out {
		pi := p
		pi.Seed = repSeed(p.Seed, i)
		if err := r.RunInto(pi, &out[i]); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) arrive() {
	now := r.eng.Now()
	id := r.arrived
	r.arrived++
	ci := int32(0)
	if r.drawClass {
		ci = r.pickClass()
	}
	qi := r.allocQuery()
	q := &r.pool[qi]
	q.id = int32(id)
	q.class = ci
	q.arrival = now
	q.service = r.classes[ci].service.Sample(&r.rng)
	q.warm = id < r.warmup
	s := int32(0)
	if r.dispatch != nil {
		picked := r.dispatch.Pick(r, &r.dstate)
		if picked < 0 || picked >= r.servers {
			panic("queuesim: dispatcher picked an out-of-range server")
		}
		s = int32(picked)
	}
	q.srv = s
	if r.disc.Kind == DiscSERPT {
		q.pred = q.service
		if r.predDist != nil {
			q.pred = q.service * r.predDist.Sample(&r.predRNG)
		}
	}
	if r.tr != nil {
		r.emit(obs.EvArrival, now, qi, q.service)
		if r.dispatch != nil {
			r.emit(obs.EvDispatch, now, qi, float64(s))
		}
	}
	r.srvLive[s]++
	if r.disc.Kind != DiscPS {
		r.enqueue(s, qi)
	}
	if r.classes[ci].sprintOn {
		q.timeoutEv = r.eng.Schedule(now+r.classes[ci].timeout, r.cbTimeou, qi)
	}
	if r.arrived < r.total {
		r.eng.After(r.arr.Sample(&r.rng), r.cbArrive, 0)
	}
	if r.disc.Kind == DiscPS {
		r.psAdmit(s, qi, now)
		return
	}
	if r.preempt && r.srvFree[s] == 0 {
		r.maybePreempt(s, qi)
	}
	r.dispatchSrv(s)
}

// enqueue adds qi to server s's ready queue: the FIFO ring, or the index
// heap keyed by the discipline's ordering (LIFO: most recent first; SRPT:
// true service time; SERPT: noisy prediction).
func (r *Runner) enqueue(s int32, qi int32) {
	if !r.ordered {
		r.queues[s].push(qi)
		return
	}
	q := &r.pool[qi]
	switch r.disc.Kind {
	case DiscLIFO:
		q.key = -q.arrival
		q.tie = -q.id
	case DiscSERPT:
		q.key = q.pred
		q.tie = q.id
	default: // SRPT
		q.key = q.service
		q.tie = q.id
	}
	r.hpush(&r.heaps[s], qi)
}

// readyLen returns the number of queries waiting at server s.
func (r *Runner) readyLen(s int32) int {
	if r.ordered {
		return len(r.heaps[s].idx)
	}
	return r.queues[s].len()
}

// readyPop removes and returns the next query at server s per the
// discipline's order.
func (r *Runner) readyPop(s int32) int32 {
	if r.ordered {
		return r.hpop(&r.heaps[s])
	}
	return r.queues[s].pop()
}

// dispatchSrv moves queries from server s's ready queue into its free
// slots. First dispatch of a query starts its service clock; a resumed
// query keeps its progress (tau) and its original start time.
func (r *Runner) dispatchSrv(s int32) {
	now := r.eng.Now()
	for r.srvFree[s] > 0 && r.readyLen(s) > 0 {
		qi := r.readyPop(s)
		r.srvFree[s]--
		q := &r.pool[qi]
		q.running = true
		q.seg = now
		fresh := !q.started
		if fresh {
			q.started = true
			q.start = now
			q.tau = 0
		}
		r.running = append(r.running, qi)
		if r.tr != nil {
			if fresh {
				r.emit(obs.EvServiceStart, now, qi, now-q.arrival)
			} else {
				r.emit(obs.EvResume, now, qi, (1-q.tau)*q.service)
			}
		}
		if q.pending && r.acct.CanSprint(now) {
			r.engage(qi)
		} else {
			q.departEv = r.eng.Schedule(now+(1-q.tau)*q.service, r.cbDepart, qi)
		}
	}
}

// liveKey returns q's current ready-queue key: remaining true work for
// SRPT, remaining predicted work for SERPT, progress rolled to now.
func (r *Runner) liveKey(q *query, now float64) float64 {
	rem := 1 - r.progress(q, now)
	if r.disc.Kind == DiscSERPT {
		return rem * q.pred
	}
	return rem * q.service
}

// maybePreempt displaces the running query at server s with the most
// remaining work if the newly queued query newQi has strictly less —
// SRPT/SERPT's preemption rule. Ties never preempt (no churn).
func (r *Runner) maybePreempt(s int32, newQi int32) {
	now := r.eng.Now()
	worst := r.pool[newQi].key
	victim := int32(-1)
	for _, ri := range r.running {
		q := &r.pool[ri]
		if q.srv != s {
			continue
		}
		if rem := r.liveKey(q, now); rem > worst {
			worst = rem
			victim = ri
		}
	}
	if victim < 0 {
		return
	}
	r.preemptQuery(victim, worst, now)
}

// preemptQuery suspends a running query mid-service: progress is rolled
// forward, any active sprint is stopped (its seconds banked), the pending
// departure is cancelled and the query re-enters the ready heap keyed by
// its remaining work. A query whose timeout already fired re-arms pending
// so it re-engages on resume if budget allows.
func (r *Runner) preemptQuery(qi int32, key float64, now float64) {
	q := &r.pool[qi]
	q.tau = r.progress(q, now)
	q.seg = now
	if q.sprint {
		r.acct.StopSprint(now)
		q.sprint = false
		r.res.SprintSeconds += now - q.sprintStart
		if r.tr != nil {
			r.emit(obs.EvSprintStop, now, qi, now-q.sprintStart)
		}
		r.replanBudget()
	}
	r.eng.Cancel(q.departEv)
	q.departEv = sim.Handle{}
	if r.tr != nil {
		r.emit(obs.EvPreempt, now, qi, (1-q.tau)*q.service)
	}
	q.running = false
	if q.toFired && r.classes[q.class].sprintOn {
		q.pending = true
	}
	for i, ri := range r.running {
		if ri == qi {
			r.running = append(r.running[:i], r.running[i+1:]...)
			break
		}
	}
	r.preempts++
	s := q.srv
	r.srvFree[s]++
	q.key = key
	q.tie = q.id
	r.hpush(&r.heaps[s], qi)
}

// progress rolls q's completed-work fraction forward to now.
func (r *Runner) progress(q *query, now float64) float64 {
	rate := 1.0
	if q.sprint {
		rate = r.classes[q.class].speedup
	}
	tau := q.tau + (now-q.seg)*rate/q.service
	return math.Min(tau, 1)
}

func (r *Runner) onTimeout(qi int32) {
	now := r.eng.Now()
	q := &r.pool[qi]
	q.toFired = true
	if r.tr != nil {
		r.emit(obs.EvTimeout, now, qi, r.classes[q.class].timeout)
	}
	if !q.running {
		q.pending = true
		return
	}
	if !q.sprint && r.acct.CanSprint(now) {
		q.tau = r.progress(q, now)
		q.seg = now
		r.engage(qi)
	}
}

// engage applies Equation 1: the remaining execution shrinks by mu/mu_e.
func (r *Runner) engage(qi int32) {
	now := r.eng.Now()
	r.engages++
	q := &r.pool[qi]
	if r.tr != nil {
		level := r.acct.Level(now)
		if r.exhausted {
			r.emit(obs.EvRefill, now, qi, level)
		}
		r.emit(obs.EvSprintStart, now, qi, level)
	}
	r.exhausted = false
	r.acct.StartSprint(now)
	q.sprint = true
	q.sprinted = true
	q.sprintStart = now
	remaining := (1 - q.tau) * q.service / r.classes[q.class].speedup
	r.eng.Cancel(q.departEv)
	q.departEv = r.eng.Schedule(now+remaining, r.cbDepart, qi)
	r.replanBudget()
}

func (r *Runner) replanBudget() {
	now := r.eng.Now()
	r.eng.Cancel(r.budgetEv)
	r.budgetEv = sim.Handle{}
	tte := r.acct.TimeToEmpty(now)
	if math.IsInf(tte, 1) {
		return
	}
	r.budgetEv = r.eng.Schedule(now+tte, r.cbBudget, 0)
}

func (r *Runner) onBudgetEmpty() {
	now := r.eng.Now()
	r.budgetEv = sim.Handle{}
	r.exhaustions++
	r.exhausted = true
	if r.tr != nil {
		active := 0
		for _, qi := range r.running {
			if r.pool[qi].sprint {
				active++
			}
		}
		r.tr.Event(obs.QueryEvent{Type: obs.EvBudgetExhausted, Time: now, Query: -1, Value: float64(active)})
	}
	for _, qi := range r.running {
		q := &r.pool[qi]
		if !q.sprint {
			continue
		}
		q.tau = r.progress(q, now)
		q.seg = now
		r.acct.StopSprint(now)
		q.sprint = false
		r.res.SprintSeconds += now - q.sprintStart
		if r.tr != nil {
			r.emit(obs.EvSprintStop, now, qi, now-q.sprintStart)
		}
		remaining := (1 - q.tau) * q.service
		q.departEv = r.eng.Reschedule(q.departEv, now+remaining)
	}
	r.replanBudget()
}

func (r *Runner) depart(qi int32) {
	now := r.eng.Now()
	r.res.Duration = now
	q := &r.pool[qi]
	if q.sprint {
		r.acct.StopSprint(now)
		q.sprint = false
		r.res.SprintSeconds += now - q.sprintStart
		if r.tr != nil {
			r.emit(obs.EvSprintStop, now, qi, now-q.sprintStart)
		}
		r.replanBudget()
	}
	if r.tr != nil {
		r.emit(obs.EvDeparture, now, qi, now-q.arrival)
	}
	r.eng.Cancel(q.timeoutEv)
	q.timeoutEv = sim.Handle{}
	for i, ri := range r.running {
		if ri == qi {
			r.running = append(r.running[:i], r.running[i+1:]...)
			break
		}
	}
	q.running = false
	if !q.warm {
		rt := now - q.arrival
		r.res.RTs = append(r.res.RTs, rt)
		r.res.QueueingTimes = append(r.res.QueueingTimes, q.start-q.arrival)
		if r.mres != nil {
			name := r.classes[q.class].name
			r.mres.ByClass[name] = append(r.mres.ByClass[name], rt)
		}
		if q.sprinted {
			r.res.SprintedCount++
		}
	}
	s := q.srv
	r.srvFree[s]++
	r.srvLive[s]--
	r.freeQuery(qi)
	r.dispatchSrv(s)
}

// emit sends one lifecycle event; callers guard on r.tr != nil.
func (r *Runner) emit(typ obs.EventType, now float64, qi int32, value float64) {
	q := &r.pool[qi]
	e := obs.QueryEvent{Type: typ, Time: now, Query: int(q.id), Value: value}
	if r.multi {
		e.Class = r.classes[q.class].name
	}
	r.tr.Event(e)
}

// pickClass draws a class index by weight.
func (r *Runner) pickClass() int32 {
	u := r.rng.Float64()
	acc := 0.0
	for i := range r.classes {
		acc += r.classes[i].weight
		if u < acc {
			return int32(i)
		}
	}
	return int32(len(r.classes) - 1)
}

// allocQuery takes a slot from the pool, recycling freed indices before
// growing the slab, and tracks the live high-water mark.
func (r *Runner) allocQuery() int32 {
	var qi int32
	if n := len(r.qfree); n > 0 {
		qi = r.qfree[n-1]
		r.qfree = r.qfree[:n-1]
		r.pool[qi] = query{}
	} else {
		r.pool = append(r.pool, query{})
		qi = int32(len(r.pool) - 1)
	}
	r.qlive++
	if r.qlive > r.qHighWater {
		r.qHighWater = r.qlive
	}
	return qi
}

// freeQuery returns a departed query's slot to the pool.
func (r *Runner) freeQuery(qi int32) {
	r.qfree = append(r.qfree, qi)
	r.qlive--
}

// Prediction summarises replicated simulations of one scenario.
type Prediction struct {
	MeanRT float64
	P95RT  float64
	P99RT  float64
	// Replications and QueriesSimulated record the prediction's cost.
	Replications     int
	QueriesSimulated int
}

// Predict runs reps independent replications (in parallel across at most
// workers goroutines; 0 means NumCPU) and pools their response times.
// This is the prediction primitive behind Figure 11's throughput study.
// Replications are sharded in contiguous chunks, one reusable Runner per
// worker, and each replication's seed depends only on its index — so the
// pooled output is bit-identical regardless of worker count.
func Predict(p Params, reps, workers int) (Prediction, error) {
	if err := p.validate(); err != nil {
		return Prediction{}, err
	}
	if reps <= 0 {
		reps = 1
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > reps {
		workers = reps
	}
	all := make([][]float64, reps)
	runRep := func(r *Runner, i int) error {
		pi := p
		pi.Seed = repSeed(p.Seed, i)
		var res Result
		if err := r.RunInto(pi, &res); err != nil {
			return err
		}
		all[i] = res.RTs
		return nil
	}
	if workers == 1 {
		r := getRunner()
		for i := 0; i < reps; i++ {
			if err := runRep(r, i); err != nil {
				putRunner(r)
				return Prediction{}, err
			}
		}
		putRunner(r)
	} else {
		chunk := (reps + workers - 1) / workers
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > reps {
				hi = reps
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			//lint:ignore ctxleak bounded fork-join: replications always complete and are joined before Predict returns
			go func(w, lo, hi int) {
				defer wg.Done()
				r := getRunner()
				defer putRunner(r)
				for i := lo; i < hi; i++ {
					if err := runRep(r, i); err != nil {
						errs[w] = err
						return
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return Prediction{}, err
			}
		}
	}
	pooled := make([]float64, 0, reps*p.NumQueries)
	for _, rts := range all {
		pooled = append(pooled, rts...)
	}
	sum := stats.Summarize(pooled)
	return Prediction{
		MeanRT:           sum.Mean,
		P95RT:            sum.P95,
		P99RT:            sum.P99,
		Replications:     reps,
		QueriesSimulated: len(pooled),
	}, nil
}
