package policies

// Joint discipline x sprint-policy search. The paper's MINRT search
// (Equation 4) anneals the sprint timeout under a fixed FIFO queue; once
// the discipline is a knob too, the right comparison optimizes the
// timeout *per discipline* and then compares the optima — a discipline
// changes which queries wait, so it shifts the best timeout along with
// the response time. Processor sharing has no timeout to anneal (it
// rejects sprinting), so its candidates are scored at the fixed
// no-sprint point instead.

import (
	"fmt"

	"mdsprint/internal/explore"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sweep"
)

// JointCandidate is one (discipline, fan-out) point in the joint search
// space. A nil Dispatch (with Servers <= 1) keeps the single central
// queue.
type JointCandidate struct {
	Discipline queuesim.Discipline
	Servers    int
	Dispatch   queuesim.Dispatcher
}

// Label renders the candidate for tables: "srpt" or "fifo/jsq@4".
func (jc JointCandidate) Label() string {
	if jc.Servers > 1 && jc.Dispatch != nil {
		return fmt.Sprintf("%s/%s@%d", jc.Discipline, jc.Dispatch.Canon(), jc.Servers)
	}
	return jc.Discipline.String()
}

// JointOutcome is one candidate's optimized operating point.
type JointOutcome struct {
	Candidate JointCandidate
	// Timeout is the annealed sprint timeout (-1 for the ps candidates,
	// which run without sprinting).
	Timeout float64
	// MeanRT is the model-predicted mean response time at that timeout.
	MeanRT float64
	// Evaluations counts objective calls the annealer spent (0 for ps).
	Evaluations int
}

// JointSearch optimizes the sprint timeout for every candidate (via the
// batch annealer, cohorts scored through the memoizing sweep engine) and
// returns the per-candidate outcomes in input order plus the index of
// the winner — lowest optimized mean RT, earliest candidate on ties.
// Candidates search over timeout in [0, p99 of the no-sprint response
// time], the same window FewToMany scans.
func JointSearch(c Context, candidates []JointCandidate, opts explore.BatchOptions) ([]JointOutcome, int, error) {
	if len(candidates) == 0 {
		return nil, -1, fmt.Errorf("policies: joint search needs at least one candidate")
	}
	cc := c.withDefaults()
	if len(cc.Dataset.ServiceSamples) == 0 {
		return nil, -1, fmt.Errorf("policies: dataset has no service samples")
	}
	eng := sweep.Or(cc.Engine)
	maxTO := noSprintQuantile(cc, 0.99)
	rate := cc.Dataset.MarginalRate

	outcomes := make([]JointOutcome, len(candidates))
	for i, cand := range candidates {
		ctx := cc
		ctx.Discipline = cand.Discipline
		ctx.Servers = cand.Servers
		ctx.Dispatch = cand.Dispatch

		if cand.Discipline.Kind == queuesim.DiscPS {
			// No timeout knob: score the fixed no-sprint point.
			task := sweep.Task{
				Params: simParams(ctx, -1, 0, 0),
				Reps:   ctx.SimReps,
			}
			var (
				mean float64
				err  error
			)
			if cc.Tiers != nil {
				mean, _, err = cc.Tiers.MeanRT(task)
			} else {
				var pred queuesim.Prediction
				pred, err = eng.Evaluate(task)
				mean = pred.MeanRT
			}
			if err != nil {
				return nil, -1, fmt.Errorf("policies: %s: %w", cand.Label(), err)
			}
			outcomes[i] = JointOutcome{Candidate: cand, Timeout: -1, MeanRT: mean}
			continue
		}

		obj := func(pts [][]float64) ([]float64, error) {
			tasks := make([]sweep.Task, len(pts))
			for j, pt := range pts {
				tasks[j] = sweep.Task{
					Params: simParams(ctx, pt[0], ctx.BudgetPct, rate),
					Reps:   ctx.SimReps,
				}
			}
			if cc.Tiers != nil {
				means, _, err := cc.Tiers.MeanRTs(tasks)
				return means, err
			}
			return eng.MeanRTs(tasks)
		}
		// The paper's +-100 s neighbour window suits its 0-300 s search
		// space; this window is data-derived (p99 of the no-sprint RT),
		// so scale the neighbourhood with it or the annealer cannot
		// cross the space within its iteration budget.
		space := explore.Space{
			Lo:            []float64{0},
			Hi:            []float64{maxTO},
			NeighborRange: []float64{maxTO / 8},
		}
		res, err := explore.MinimizeBatch(obj, space, opts)
		if err != nil {
			return nil, -1, fmt.Errorf("policies: %s: %w", cand.Label(), err)
		}
		outcomes[i] = JointOutcome{
			Candidate:   cand,
			Timeout:     res.Point[0],
			MeanRT:      res.RT,
			Evaluations: res.Evaluations,
		}
	}

	best := 0
	for i := 1; i < len(outcomes); i++ {
		if outcomes[i].MeanRT < outcomes[best].MeanRT {
			best = i
		}
	}
	return outcomes, best, nil
}
