// Package policies implements the sprinting-policy baselines Section 4.3
// compares the model-driven approach against:
//
//   - big-burst: timeout 0, full sprint rate, a tight budget — every
//     arriving query sprints until the budget drains;
//   - small-burst: timeout 0, reduced sprint rate, enlarged budget;
//   - Few-to-Many (adapted from Haque et al.): offline-profiled marginal
//     sprint rate, then the largest timeout that still exhausts the
//     budget (speeding up the slowest queries);
//   - Adrenaline (adapted from Hsu et al.): timeout set to the 85th
//     percentile of non-sprinting response time.
//
// Every baseline is expressed against a profiled dataset and the model
// simulator, so comparisons with the model-driven search are apples to
// apples: no policy gets to peek at the testbed's hidden runtime effects.
package policies

import (
	"fmt"
	"math"

	"mdsprint/internal/dist"
	"mdsprint/internal/profiler"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/stats"
	"mdsprint/internal/sweep"
	"mdsprint/internal/tier"
)

// Context fixes the workload conditions (everything except the timeout/
// speedup/budget knobs a baseline sets) for baseline computation.
type Context struct {
	// Dataset supplies mu, mu_m and service samples.
	Dataset *profiler.Dataset
	// ArrivalRate in queries/second; ArrivalKind the family.
	ArrivalRate float64
	ArrivalKind dist.Kind
	// RefillTime and BudgetPct are the budget clause the baselines
	// adapt (big-burst shrinks it, small-burst enlarges it).
	RefillTime float64
	BudgetPct  float64
	// SimQueries, SimReps and Seed size the model simulations.
	SimQueries int
	SimReps    int
	Seed       uint64
	// Discipline selects the ready-queue ordering the workload runs
	// under (zero value: the paper's FIFO). Servers > 1 fans arrivals
	// across per-server queues via Dispatch; both zero values keep the
	// single central queue.
	Discipline queuesim.Discipline
	Servers    int
	Dispatch   queuesim.Dispatcher
	// Engine evaluates the model simulations; nil uses sweep.Shared(),
	// so settings revisited across baselines are memoized.
	Engine *sweep.Engine
	// Tiers, when set, answers mean-RT queries through the staged
	// estimator (analytic/cache/short/full ladder) instead of always
	// running full-rep simulations; it supersedes Engine for scoring.
	// Quantile probes (FewToMany, Adrenaline) still simulate directly —
	// they need the full RT sample, not a mean.
	Tiers *tier.Estimator
}

func (c Context) withDefaults() Context {
	if c.SimQueries == 0 {
		c.SimQueries = 4000
	}
	if c.SimReps == 0 {
		c.SimReps = 2
	}
	if c.ArrivalKind == "" {
		c.ArrivalKind = dist.KindExponential
	}
	return c
}

// Setting is a fully resolved baseline policy in profiler vocabulary.
type Setting struct {
	Name      string
	Timeout   float64
	BudgetPct float64
	// Speedup commands the sprint rate (0 = mechanism/profile maximum).
	Speedup float64
}

// Condition embeds the setting into a profiler condition at the context's
// workload conditions.
func (s Setting) Condition(c Context) profiler.Condition {
	cc := c.withDefaults()
	return profiler.Condition{
		Utilization: cc.ArrivalRate / cc.Dataset.ServiceRate,
		ArrivalKind: cc.ArrivalKind,
		Timeout:     s.Timeout,
		RefillTime:  cc.RefillTime,
		BudgetPct:   s.BudgetPct,
		Speedup:     s.Speedup,
	}
}

// simParams builds simulator parameters for a setting, at the given
// sprint rate.
func simParams(c Context, timeout, budgetPct, sprintRate float64) queuesim.Params {
	return queuesim.Params{
		ArrivalRate:   c.ArrivalRate,
		ArrivalKind:   c.ArrivalKind,
		Service:       dist.NewEmpirical(c.Dataset.ServiceSamples),
		ServiceRate:   c.Dataset.ServiceRate,
		SprintRate:    sprintRate,
		Timeout:       timeout,
		BudgetSeconds: budgetPct * c.RefillTime,
		RefillTime:    c.RefillTime,
		NumQueries:    c.SimQueries,
		Warmup:        c.SimQueries / 10,
		Discipline:    c.Discipline,
		Servers:       c.Servers,
		Dispatch:      c.Dispatch,
		Seed:          c.Seed,
	}
}

// BigBurst is the timeout-0, full-rate baseline.
func BigBurst(c Context) Setting {
	return Setting{Name: "big-burst", Timeout: 0, BudgetPct: c.BudgetPct}
}

// SmallBurst halves the sprint-rate gain and doubles the budget, the
// Section 4.3 variant (44 qph sprint rate instead of 74, budget for twice
// the executions).
func SmallBurst(c Context) Setting {
	cc := c.withDefaults()
	fullSpeedup := cc.Dataset.MarginalSpeedup()
	// Scale the speedup toward 1 by the paper's ratio (44/74 of the
	// sprint rate above sustained).
	reduced := 1 + (fullSpeedup-1)*0.6
	budget := math.Min(cc.BudgetPct*2, 1.0)
	return Setting{Name: "small-burst", Timeout: 0, BudgetPct: budget, Speedup: reduced}
}

// FewToMany profiles offline (the dataset's marginal rate) and returns
// the largest timeout that still exhausts the sprinting budget, scanning
// timeouts from slowest-queries-first downward.
func FewToMany(c Context) (Setting, error) {
	cc := c.withDefaults()
	if len(cc.Dataset.ServiceSamples) == 0 {
		return Setting{}, fmt.Errorf("policies: dataset has no service samples")
	}
	// Candidate timeouts: spread over [0, ~p99 of no-sprint RT].
	maxTO := noSprintQuantile(cc, 0.99)
	const steps = 24
	exhausted := func(timeout float64) bool {
		p := simParams(cc, timeout, cc.BudgetPct, cc.Dataset.MarginalRate)
		res := queuesim.MustRun(p)
		return res.BudgetUtilization(p) >= 0.90
	}
	for i := steps; i >= 0; i-- {
		to := maxTO * float64(i) / steps
		if exhausted(to) {
			return Setting{Name: "few-to-many", Timeout: to, BudgetPct: cc.BudgetPct}, nil
		}
	}
	return Setting{Name: "few-to-many", Timeout: 0, BudgetPct: cc.BudgetPct}, nil
}

// Adrenaline sets the timeout to the 85th percentile of non-sprinting
// response time. "Non-sprinting" references normal-speed operation: on a
// throttled platform that is the unthrottled (marginal-rate) service —
// otherwise every query would exceed the threshold and tail-targeting
// degenerates.
func Adrenaline(c Context) (Setting, error) {
	cc := c.withDefaults()
	if len(cc.Dataset.ServiceSamples) == 0 {
		return Setting{}, fmt.Errorf("policies: dataset has no service samples")
	}
	return Setting{
		Name:      "adrenaline",
		Timeout:   normalSpeedQuantile(cc, 0.85),
		BudgetPct: cc.BudgetPct,
	}, nil
}

// noSprintQuantile simulates the context without sprinting and returns
// the q-th response-time quantile.
func noSprintQuantile(c Context, q float64) float64 {
	p := simParams(c, -1, 0, 0)
	res := queuesim.MustRun(p)
	return stats.Quantile(res.RTs, q)
}

// normalSpeedQuantile simulates the workload at its unthrottled
// (marginal) rate with no sprinting and returns the q-th response-time
// quantile. On non-throttled platforms (marginal close to sustained) it
// approaches noSprintQuantile.
func normalSpeedQuantile(c Context, q float64) float64 {
	scale := c.Dataset.ServiceRate / c.Dataset.MarginalRate
	scaled := make([]float64, len(c.Dataset.ServiceSamples))
	for i, s := range c.Dataset.ServiceSamples {
		scaled[i] = s * scale
	}
	p := simParams(c, -1, 0, 0)
	p.Service = dist.NewEmpirical(scaled)
	p.ServiceRate = c.Dataset.MarginalRate
	res := queuesim.MustRun(p)
	return stats.Quantile(res.RTs, q)
}

// ExpectedRT evaluates a setting's mean response time under the model
// simulator at the given sprint rate (pass the marginal or effective rate
// from the caller's model).
func ExpectedRT(c Context, s Setting, sprintRate float64) float64 {
	cc := c.withDefaults()
	rate := sprintRate
	if s.Speedup > 0 {
		if cap := s.Speedup * cc.Dataset.ServiceRate; cap < rate {
			rate = cap
		}
	}
	task := sweep.Task{
		Params: simParams(cc, s.Timeout, s.BudgetPct, rate),
		Reps:   cc.SimReps,
	}
	if cc.Tiers != nil {
		mean, _, err := cc.Tiers.MeanRT(task)
		if err != nil {
			panic(fmt.Sprintf("policies: %v", err))
		}
		return mean
	}
	pred, err := sweep.Or(cc.Engine).Evaluate(task)
	if err != nil {
		panic(fmt.Sprintf("policies: %v", err))
	}
	return pred.MeanRT
}
