package policies

import (
	"math"
	"testing"

	"mdsprint/internal/mech"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sprint"
	"mdsprint/internal/sweep"
	"mdsprint/internal/tier"
	"mdsprint/internal/workload"
)

// throttledJacobi profiles Jacobi under Section 4.3's CPU throttling:
// sustained 14.8 qph, sprint 74 qph.
func throttledJacobi(t *testing.T) Context {
	t.Helper()
	p := &profiler.Profiler{
		Mix:           workload.SingleClass(workload.MustByName("Jacobi")),
		Mechanism:     mech.NewThrottle(0.20),
		QueriesPerRun: 800,
		Seed:          3,
	}
	mu, samples, _ := p.MeasureServiceRate()
	mum, _ := p.MeasureMarginalRate()
	ds := &profiler.Dataset{
		MixName: "Jacobi", MechName: "Throttle20%",
		ServiceRate: mu, MarginalRate: mum, ServiceSamples: samples,
	}
	return Context{
		Dataset:     ds,
		ArrivalRate: 0.8 * mu, // Section 4.3: 80% utilization
		RefillTime:  600,
		BudgetPct:   0.30,
		SimQueries:  2500,
		SimReps:     2,
		Seed:        7,
	}
}

func TestBigBurstShape(t *testing.T) {
	c := throttledJacobi(t)
	s := BigBurst(c)
	if s.Timeout != 0 || s.BudgetPct != c.BudgetPct || s.Speedup != 0 {
		t.Fatalf("big-burst = %+v", s)
	}
}

func TestSmallBurstReducesRateEnlargesBudget(t *testing.T) {
	c := throttledJacobi(t)
	s := SmallBurst(c)
	if s.Timeout != 0 {
		t.Fatalf("small-burst timeout %v", s.Timeout)
	}
	if s.BudgetPct <= c.BudgetPct {
		t.Fatalf("small-burst budget %v not enlarged from %v", s.BudgetPct, c.BudgetPct)
	}
	full := c.Dataset.MarginalSpeedup()
	if s.Speedup >= full || s.Speedup <= 1 {
		t.Fatalf("small-burst speedup %v not between 1 and %v", s.Speedup, full)
	}
}

func TestFewToManyExhaustsBudget(t *testing.T) {
	c := throttledJacobi(t)
	// Make the budget genuinely tight: at 80% utilization and 5x
	// speedup, sprint demand is at most util/speedup = 0.16 sprint-
	// seconds per second, so an 8% refill supply is exhaustible while
	// the default 30% never is.
	c.BudgetPct = 0.08
	s, err := FewToMany(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Timeout < 0 {
		t.Fatalf("few-to-many timeout %v", s.Timeout)
	}
	// The chosen timeout must exhaust the budget (>= 90% utilisation).
	p := simParams(c.withDefaults(), s.Timeout, s.BudgetPct, c.Dataset.MarginalRate)
	res := queuesim.MustRun(p)
	if u := res.BudgetUtilization(p); u < 0.85 {
		t.Fatalf("few-to-many timeout %v leaves budget %v utilised", s.Timeout, u)
	}
}

func TestAdrenalineTimeoutIsTailPercentile(t *testing.T) {
	c := throttledJacobi(t)
	s, err := Adrenaline(c)
	if err != nil {
		t.Fatal(err)
	}
	// The threshold references normal-speed (unthrottled) operation:
	// above one full-speed service time, far below the throttled
	// response-time scale.
	fullSvc := 1 / c.Dataset.MarginalRate
	throttledSvc := 1 / c.Dataset.ServiceRate
	if s.Timeout <= fullSvc {
		t.Fatalf("adrenaline timeout %v <= full-speed service %v", s.Timeout, fullSvc)
	}
	if s.Timeout >= 3*throttledSvc {
		t.Fatalf("adrenaline timeout %v references the throttled distribution", s.Timeout)
	}
}

func TestExpectedRTOrdersPolicies(t *testing.T) {
	c := throttledJacobi(t)
	// Sprinting at the marginal rate must beat no sprinting at all.
	noSprint := ExpectedRT(c, Setting{Timeout: -1}, 0)
	big := ExpectedRT(c, BigBurst(c), c.Dataset.MarginalRate)
	if big >= noSprint {
		t.Fatalf("big-burst RT %v >= no-sprint RT %v", big, noSprint)
	}
}

func TestExpectedRTRespectsCommandedSpeedup(t *testing.T) {
	c := throttledJacobi(t)
	small := SmallBurst(c)
	// Commanded speedup caps the rate: expected RT with a tiny
	// commanded speedup approaches the no-sprint RT.
	slow := ExpectedRT(c, Setting{Timeout: 0, BudgetPct: 0.3, Speedup: 1.05}, c.Dataset.MarginalRate)
	fast := ExpectedRT(c, Setting{Timeout: 0, BudgetPct: small.BudgetPct, Speedup: 0}, c.Dataset.MarginalRate)
	if fast >= slow {
		t.Fatalf("full-rate RT %v >= speedup-1.05 RT %v", fast, slow)
	}
}

func TestSettingCondition(t *testing.T) {
	c := throttledJacobi(t)
	s := Setting{Name: "x", Timeout: 42, BudgetPct: 0.25, Speedup: 2}
	cond := s.Condition(c)
	if cond.Timeout != 42 || cond.BudgetPct != 0.25 || cond.Speedup != 2 {
		t.Fatalf("condition %+v", cond)
	}
	if cond.RefillTime != c.RefillTime {
		t.Fatalf("refill %v", cond.RefillTime)
	}
}

func TestErrorsOnEmptyDataset(t *testing.T) {
	c := Context{Dataset: &profiler.Dataset{ServiceRate: 0.01}, ArrivalRate: 0.005, RefillTime: 100, BudgetPct: 0.2}
	if _, err := FewToMany(c); err == nil {
		t.Fatal("FewToMany accepted empty dataset")
	}
	if _, err := Adrenaline(c); err == nil {
		t.Fatal("Adrenaline accepted empty dataset")
	}
}

func TestThrottleMatchesSection43Rates(t *testing.T) {
	c := throttledJacobi(t)
	if got := sprint.ToQPH(c.Dataset.ServiceRate); got < 13 || got > 15.5 {
		t.Fatalf("throttled sustained %v qph, want ~14.8", got)
	}
	if got := sprint.ToQPH(c.Dataset.MarginalRate); got < 60 || got > 76 {
		t.Fatalf("throttled sprint rate %v qph, want ~70", got)
	}
}

// TestExpectedRTViaTiers checks the tiered path answers within its
// advertised error bound of the direct engine evaluation, and that the
// estimator actually saw the queries.
func TestExpectedRTViaTiers(t *testing.T) {
	c := throttledJacobi(t)
	s := BigBurst(c)
	rate := c.Dataset.MarginalRate

	full := ExpectedRT(c, s, rate)

	tc := c
	tc.Tiers = tier.Must(tier.Spec{Bound: 0.1}, tier.Options{
		Engine:  sweep.New(sweep.Options{Metrics: obs.NewRegistry()}),
		Metrics: obs.NewRegistry(),
	})
	tiered := ExpectedRT(tc, s, rate)

	if rel := math.Abs(tiered-full) / full; rel > tc.Tiers.Spec().Bound {
		t.Fatalf("tiered ExpectedRT %v vs full %v: relative error %.3f exceeds bound", tiered, full, rel)
	}
	if st := tc.Tiers.Stats(); st.Answers == 0 {
		t.Fatal("tier estimator saw no queries")
	}
}
