package policies

import (
	"testing"

	"mdsprint/internal/explore"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/queuesim/dispatch"
	"mdsprint/internal/sweep"
)

// jointCandidates is the standard panel the joint search compares: the
// paper's FIFO, the preemptive size-based disciplines, egalitarian
// sharing, and a two-queue JSQ fan-out of the FIFO baseline.
func jointCandidates() []JointCandidate {
	return []JointCandidate{
		{Discipline: queuesim.MustParseDiscipline("fifo")},
		{Discipline: queuesim.MustParseDiscipline("srpt")},
		{Discipline: queuesim.MustParseDiscipline("ps")},
		{Discipline: queuesim.MustParseDiscipline("fifo"), Servers: 2, Dispatch: dispatch.JSQ()},
	}
}

func TestJointSearchOptimizesPerCandidate(t *testing.T) {
	c := throttledJacobi(t)
	c.SimQueries = 1200
	c.Engine = sweep.New(sweep.Options{})
	opts := explore.BatchOptions{Options: explore.Options{MaxIter: 40, Seed: 5}, Cohort: 4}

	cands := jointCandidates()
	outs, best, err := JointSearch(c, cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(cands) {
		t.Fatalf("%d outcomes for %d candidates", len(outs), len(cands))
	}
	if best < 0 || best >= len(outs) {
		t.Fatalf("best index %d out of range", best)
	}
	for i, o := range outs {
		if o.Candidate.Label() != cands[i].Label() {
			t.Fatalf("outcome %d is %s, want input order (%s)", i, o.Candidate.Label(), cands[i].Label())
		}
		if !(o.MeanRT > 0) {
			t.Fatalf("%s: mean RT %v", o.Candidate.Label(), o.MeanRT)
		}
		if o.Candidate.Discipline.Kind == queuesim.DiscPS {
			if o.Timeout != -1 || o.Evaluations != 0 {
				t.Fatalf("ps outcome %+v: want fixed no-sprint point", o)
			}
		} else {
			if o.Timeout < 0 {
				t.Fatalf("%s: annealed timeout %v", o.Candidate.Label(), o.Timeout)
			}
			if o.Evaluations == 0 {
				t.Fatalf("%s: annealer did no work", o.Candidate.Label())
			}
		}
		if outs[best].MeanRT > o.MeanRT {
			t.Fatalf("best %s (%.4f) worse than %s (%.4f)",
				outs[best].Candidate.Label(), outs[best].MeanRT, o.Candidate.Label(), o.MeanRT)
		}
	}

	// A sprinting discipline must beat sprint-less processor sharing at
	// 80% utilization with a real budget — otherwise the joint search is
	// not actually optimizing the timeout.
	var ps, fifo JointOutcome
	for _, o := range outs {
		switch {
		case o.Candidate.Discipline.Kind == queuesim.DiscPS:
			ps = o
		case o.Candidate.Label() == "fifo":
			fifo = o
		}
	}
	if fifo.MeanRT >= ps.MeanRT {
		t.Fatalf("optimized fifo RT %.4f not better than no-sprint ps RT %.4f", fifo.MeanRT, ps.MeanRT)
	}

	// Determinism: a second search over the same engine replays the
	// memoized evaluations and must land on identical outcomes.
	outs2, best2, err := JointSearch(c, cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if best2 != best {
		t.Fatalf("second search best %d, first %d", best2, best)
	}
	for i := range outs {
		if outs[i] != outs2[i] {
			t.Fatalf("outcome %d not reproducible: %+v vs %+v", i, outs[i], outs2[i])
		}
	}
}

func TestJointSearchErrors(t *testing.T) {
	c := throttledJacobi(t)
	if _, _, err := JointSearch(c, nil, explore.BatchOptions{}); err == nil {
		t.Fatal("empty candidate list accepted")
	}
	c.Dataset.ServiceSamples = nil
	cands := []JointCandidate{{Discipline: queuesim.Discipline{}}}
	if _, _, err := JointSearch(c, cands, explore.BatchOptions{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestJointCandidateLabel(t *testing.T) {
	if l := (JointCandidate{Discipline: queuesim.MustParseDiscipline("srpt")}).Label(); l != "srpt" {
		t.Fatalf("label %q", l)
	}
	jc := JointCandidate{
		Discipline: queuesim.MustParseDiscipline("serpt(0.3)"),
		Servers:    4,
		Dispatch:   dispatch.MustParse("rnd(2)"),
	}
	if l := jc.Label(); l != "serpt(0.3)/rnd(2)@4" {
		t.Fatalf("label %q", l)
	}
}
