package sprint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQPHRoundTrip(t *testing.T) {
	if got := QPH(3600); got != 1 {
		t.Fatalf("QPH(3600) = %v, want 1", got)
	}
	if got := ToQPH(QPH(87)); math.Abs(got-87) > 1e-9 {
		t.Fatalf("round trip = %v, want 87", got)
	}
}

func TestPolicyValidate(t *testing.T) {
	good := Policy{Timeout: 60, BudgetSeconds: 100, RefillTime: 500, Speedup: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	bad := []Policy{
		{Timeout: math.NaN(), BudgetSeconds: 1, RefillTime: 1, Speedup: 2},
		{Timeout: 1, BudgetSeconds: -1, RefillTime: 1, Speedup: 2},
		{Timeout: 1, BudgetSeconds: 1, RefillTime: -1, Speedup: 2},
		{Timeout: 1, BudgetSeconds: 1, RefillTime: 1, Speedup: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted: %v", i, p)
		}
	}
}

func TestSprintingDisabled(t *testing.T) {
	cases := []struct {
		p    Policy
		want bool
	}{
		{Policy{Timeout: -1, BudgetSeconds: 10, Speedup: 2}, true},
		{Policy{Timeout: 0, BudgetSeconds: 10, Speedup: 2}, false},
		{Policy{Timeout: 10, BudgetSeconds: 0, Speedup: 2}, true},
		{Policy{Timeout: 10, BudgetSeconds: 10, Speedup: 1}, true},
		{Policy{Timeout: 10, BudgetSeconds: 10, Speedup: 3}, false},
	}
	for i, c := range cases {
		if got := c.p.SprintingDisabled(); got != c.want {
			t.Errorf("case %d: SprintingDisabled = %v, want %v", i, got, c.want)
		}
	}
}

func TestRefillRate(t *testing.T) {
	p := Policy{BudgetSeconds: 100, RefillTime: 500}
	if got := p.RefillRate(); got != 0.2 {
		t.Fatalf("refill rate %v, want 0.2", got)
	}
	if got := (Policy{BudgetSeconds: 100}).RefillRate(); got != 0 {
		t.Fatalf("zero refill time should imply rate 0, got %v", got)
	}
}

func TestBudgetFromPercentMatchesAWS(t *testing.T) {
	// AWS T2.small: 720 sprint-seconds per hour = 20% of a 3600 s window.
	if got := BudgetFromPercent(0.20, 3600); got != 720 {
		t.Fatalf("AWS budget = %v sprint-seconds, want 720", got)
	}
	if got := PercentFromBudget(720, 3600); math.Abs(got-0.20) > 1e-12 {
		t.Fatalf("inverse = %v, want 0.20", got)
	}
}

func TestBudgetPercentRoundTripProperty(t *testing.T) {
	f := func(pctRaw, refillRaw uint16) bool {
		pct := float64(pctRaw%1000) / 1000
		refill := float64(refillRaw%10000) + 1
		b := BudgetFromPercent(pct, refill)
		return math.Abs(PercentFromBudget(b, refill)-pct) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccountantStartsFull(t *testing.T) {
	a := NewAccountant(100, 1)
	if got := a.Level(0); got != 100 {
		t.Fatalf("initial level %v, want 100", got)
	}
}

func TestAccountantDrainsDuringSprint(t *testing.T) {
	a := NewAccountant(100, 0)
	a.StartSprint(0)
	if got := a.Level(30); got != 70 {
		t.Fatalf("level after 30 s sprint = %v, want 70", got)
	}
	a.StopSprint(40)
	if got := a.Level(100); got != 60 {
		t.Fatalf("level after stop = %v, want 60 (no refill)", got)
	}
}

func TestAccountantRefills(t *testing.T) {
	a := NewAccountant(100, 2, WithInitialLevel(10))
	if got := a.Level(20); got != 50 {
		t.Fatalf("level after 20 s refill = %v, want 50", got)
	}
	if got := a.Level(1000); got != 100 {
		t.Fatalf("level must clamp at capacity, got %v", got)
	}
}

func TestAccountantNetRateDuringSprint(t *testing.T) {
	// Refill 0.5/s, one sprint draining 1/s: net -0.5/s.
	a := NewAccountant(100, 0.5)
	a.StartSprint(0)
	if got := a.Level(40); math.Abs(got-80) > 1e-9 {
		t.Fatalf("level = %v, want 80", got)
	}
}

func TestAccountantConcurrentSprints(t *testing.T) {
	a := NewAccountant(100, 0)
	a.StartSprint(0)
	a.StartSprint(0)
	if got := a.Level(10); got != 80 {
		t.Fatalf("two sprints for 10 s: level %v, want 80", got)
	}
	a.StopSprint(10)
	if got := a.Level(20); got != 70 {
		t.Fatalf("one sprint for 10 more s: level %v, want 70", got)
	}
}

func TestAccountantTimeToEmpty(t *testing.T) {
	a := NewAccountant(60, 0)
	a.StartSprint(0)
	if got := a.TimeToEmpty(0); got != 60 {
		t.Fatalf("TimeToEmpty = %v, want 60", got)
	}
	a.StopSprint(30)
	if got := a.TimeToEmpty(30); !math.IsInf(got, 1) {
		t.Fatalf("TimeToEmpty with no sprint = %v, want +Inf", got)
	}
}

func TestAccountantTimeToEmptyWithRefill(t *testing.T) {
	a := NewAccountant(100, 0.5, WithInitialLevel(10))
	a.StartSprint(0)
	// Net -0.5/s from level 10: empty in 20 s.
	if got := a.TimeToEmpty(0); math.Abs(got-20) > 1e-9 {
		t.Fatalf("TimeToEmpty = %v, want 20", got)
	}
}

func TestAccountantHardBudgetClampsAtZero(t *testing.T) {
	a := NewAccountant(10, 0)
	a.StartSprint(0)
	if got := a.Level(10.0000001); got != 0 {
		t.Fatalf("tiny overshoot should clamp to 0, got %v", got)
	}
	if a.CanSprint(11) {
		t.Fatal("hard budget at zero must refuse new sprints")
	}
}

func TestAccountantSoftBudgetOverdraws(t *testing.T) {
	a := NewAccountant(10, 0, WithSoftBudget())
	a.StartSprint(0)
	if got := a.Level(25); got != -15 {
		t.Fatalf("soft budget level = %v, want -15", got)
	}
	if !a.CanSprint(25) {
		t.Fatal("soft budget must always allow sprinting")
	}
	if got := a.TimeToEmpty(25); !math.IsInf(got, 1) {
		t.Fatalf("soft budget TimeToEmpty = %v, want +Inf", got)
	}
}

func TestAccountantPausedRefill(t *testing.T) {
	a := NewAccountant(100, 2, WithInitialLevel(50), WithPausedRefill())
	a.StartSprint(0)
	// With paused refill the net rate is -1/s, not +1/s.
	if got := a.Level(10); got != 40 {
		t.Fatalf("paused-refill level = %v, want 40", got)
	}
	a.StopSprint(10)
	if got := a.Level(20); got != 60 {
		t.Fatalf("after sprint ends refill resumes: level %v, want 60", got)
	}
}

func TestAccountantTimeToLevel(t *testing.T) {
	a := NewAccountant(100, 2, WithInitialLevel(10))
	if got := a.TimeToLevel(0, 50); got != 20 {
		t.Fatalf("TimeToLevel = %v, want 20", got)
	}
	if got := a.TimeToLevel(0, 5); got != 0 {
		t.Fatalf("already satisfied TimeToLevel = %v, want 0", got)
	}
	if got := a.TimeToLevel(0, 200); !math.IsInf(got, 1) {
		t.Fatalf("unreachable TimeToLevel = %v, want +Inf", got)
	}
}

func TestAccountantStopWithoutStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StopSprint without StartSprint did not panic")
		}
	}()
	NewAccountant(10, 0).StopSprint(0)
}

func TestAccountantTimeBackwardsPanics(t *testing.T) {
	a := NewAccountant(10, 1)
	a.Level(5)
	defer func() {
		if recover() == nil {
			t.Fatal("time regression did not panic")
		}
	}()
	a.Level(4)
}

func TestForPolicy(t *testing.T) {
	p := Policy{Timeout: 60, BudgetSeconds: 720, RefillTime: 3600, Speedup: 5, Soft: true}
	a := ForPolicy(p)
	if a.Capacity() != 720 {
		t.Fatalf("capacity %v, want 720", a.Capacity())
	}
	a.StartSprint(0)
	if got := a.Level(10000); got >= 0 {
		t.Fatalf("soft policy should overdraw, level %v", got)
	}
}

// Property: level never exceeds capacity and, for hard budgets, never goes
// negative, under any interleaving of sprint starts/stops and queries.
func TestAccountantInvariantProperty(t *testing.T) {
	f := func(seed uint64, ops []uint8) bool {
		cap := 50.0
		a := NewAccountant(cap, 0.7)
		now := 0.0
		active := 0
		for _, op := range ops {
			now += float64(op%17) / 3
			switch {
			case op%3 == 0 && a.CanSprint(now):
				a.StartSprint(now)
				active++
			case op%3 == 1 && active > 0:
				a.StopSprint(now)
				active--
			default:
				lvl := a.Level(now)
				if lvl < 0 || lvl > cap {
					return false
				}
			}
			// Hard budgets require the driver to stop sprints at
			// exhaustion, as the simulators do.
			if active > 0 {
				if tte := a.TimeToEmpty(now); !math.IsInf(tte, 1) && tte < 1e-9 {
					for active > 0 {
						a.StopSprint(now)
						active--
					}
				}
			}
		}
		lvl := a.Level(now)
		return lvl >= 0 && lvl <= cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
