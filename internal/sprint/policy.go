// Package sprint defines computational-sprinting policies and the budget
// accounting they share. A policy controls (1) the timeout that triggers
// sprinting for a query execution, (2) the processing speed during a sprint
// (sprint rate), and (3) the sprinting budget and its refill behaviour —
// the three knobs identified in Section 1 of the paper.
//
// All times are in seconds and all rates in queries per second. The paper
// quotes throughput in queries per hour (qph); use QPH/ToQPH to convert.
package sprint

import (
	"errors"
	"fmt"
	"math"
)

// QPH converts queries-per-hour (the paper's throughput unit) to
// queries-per-second (this repository's internal rate unit).
func QPH(qph float64) float64 { return qph / 3600 }

// ToQPH converts queries-per-second back to queries-per-hour.
func ToQPH(qps float64) float64 { return qps * 3600 }

// Policy is a complete sprinting policy.
type Policy struct {
	// Timeout is the time after a query's arrival at which a sprint is
	// triggered for it, in seconds. Zero sprints every query immediately
	// on dispatch (the big-burst / small-burst baselines). A negative
	// value disables sprinting entirely.
	Timeout float64

	// BudgetSeconds is the budget capacity in sprint-seconds: how long
	// executions may run sprinted before the budget is drained.
	BudgetSeconds float64

	// RefillTime is the time, in seconds, for an empty budget to refill
	// to full capacity when no query is sprinting. The implied refill
	// rate is BudgetSeconds / RefillTime sprint-seconds per second.
	RefillTime float64

	// Speedup is the processing-rate multiplier while sprinting,
	// relative to the sustained rate (e.g. 5 for AWS burstable
	// instances). It must exceed 1 for sprinting to mean anything;
	// exactly 1 makes sprints no-ops.
	Speedup float64

	// Soft marks a soft budget: sprints may overdraw below zero instead
	// of being cut off. Section 2.1 notes the profiler enforces hard
	// budgets; soft budgets are explored as the paper's extension.
	Soft bool

	// Refill selects the budget-refill semantics. The default,
	// RefillContinuous, is AWS CPU-credit accrual. RefillWindow is the
	// paper's clause — "after refill time elapses without sprinting,
	// the budget reaches full capacity" — under which aggressive
	// timeouts can starve their own supply (the budget only snaps back
	// after an uninterrupted sprint-free window). RefillPaused is the
	// intermediate: linear accrual that freezes during sprints.
	Refill RefillMode
}

// RefillMode enumerates budget-refill semantics.
type RefillMode int

const (
	// RefillContinuous accrues BudgetSeconds/RefillTime per second at
	// all times (token bucket, AWS credits).
	RefillContinuous RefillMode = iota
	// RefillPaused accrues at the same rate but only while no sprint
	// is active.
	RefillPaused
	// RefillWindow snaps the budget to full capacity once RefillTime
	// elapses with no sprinting (the paper's Section 2.1 semantics).
	RefillWindow
)

func (m RefillMode) String() string {
	switch m {
	case RefillContinuous:
		return "continuous"
	case RefillPaused:
		return "paused"
	case RefillWindow:
		return "window"
	default:
		return fmt.Sprintf("RefillMode(%d)", int(m))
	}
}

// SprintingDisabled reports whether the policy never sprints.
func (p Policy) SprintingDisabled() bool {
	return p.Timeout < 0 || p.Speedup <= 1 || p.BudgetSeconds <= 0
}

// RefillRate returns the budget accrual rate in sprint-seconds per second.
// A zero RefillTime means the budget never refills.
func (p Policy) RefillRate() float64 {
	if p.RefillTime <= 0 {
		return 0
	}
	return p.BudgetSeconds / p.RefillTime
}

// Validate checks the policy for internally inconsistent settings.
func (p Policy) Validate() error {
	var errs []error
	if math.IsNaN(p.Timeout) || math.IsInf(p.Timeout, 0) {
		errs = append(errs, errors.New("timeout must be finite"))
	}
	if p.BudgetSeconds < 0 || math.IsNaN(p.BudgetSeconds) {
		errs = append(errs, errors.New("budget must be non-negative"))
	}
	if p.RefillTime < 0 || math.IsNaN(p.RefillTime) {
		errs = append(errs, errors.New("refill time must be non-negative"))
	}
	if p.Speedup < 1 || math.IsNaN(p.Speedup) {
		errs = append(errs, fmt.Errorf("speedup %v must be >= 1", p.Speedup))
	}
	return errors.Join(errs...)
}

func (p Policy) String() string {
	return fmt.Sprintf("Policy{timeout=%.4gs budget=%.4gs refill=%.4gs speedup=%.3gx soft=%v}",
		p.Timeout, p.BudgetSeconds, p.RefillTime, p.Speedup, p.Soft)
}

// BudgetFromPercent converts the paper's budget parameterisation — a
// percentage of sustained processing capacity over one refill window
// (Section 3's cluster-sampling centroids, Figure 12C's x-axis) — into
// budget capacity in sprint-seconds. AWS T2.small's published 720
// sprint-seconds per hour is BudgetFromPercent(0.20, 3600).
func BudgetFromPercent(pct, refillTime float64) float64 {
	if pct < 0 || refillTime < 0 {
		panic("sprint: BudgetFromPercent requires non-negative arguments")
	}
	return pct * refillTime
}

// PercentFromBudget is the inverse of BudgetFromPercent.
func PercentFromBudget(budgetSeconds, refillTime float64) float64 {
	if refillTime <= 0 {
		return 0
	}
	return budgetSeconds / refillTime
}
