package sprint

import (
	"fmt"
	"math"
)

// Accountant tracks a sprinting budget over virtual time. The budget is a
// token bucket measured in sprint-seconds: each concurrently sprinting
// execution drains one sprint-second per second, and the bucket refills at
// RefillRate sprint-seconds per second, clamped to Capacity.
//
// The accountant is piecewise-linear between calls, so simulators can ask
// exactly when the budget will hit empty (TimeToEmpty) and schedule a
// budget-exhaustion event instead of polling.
//
// Accountant is not safe for concurrent use; each simulated server owns one.
type Accountant struct {
	capacity   float64
	refillRate float64
	// pauseWhileSprinting freezes accrual while any sprint is active,
	// matching the paper's "after refill time elapses without sprinting,
	// the budget reaches full capacity" semantics. When false the bucket
	// accrues continuously (AWS CPU-credit semantics).
	pauseWhileSprinting bool
	// soft permits overdraft: the level may go negative and sprints are
	// never force-stopped by the accountant.
	soft bool
	// windowRefill, when positive, replaces rate accrual entirely: the
	// level snaps to capacity once windowRefill seconds elapse with no
	// sprint active (the paper's refill clause).
	windowRefill float64

	level     float64
	sprinting int     // number of concurrently sprinting executions
	last      float64 // virtual time of the last state update
	idleSince float64 // when sprinting last dropped to zero
}

// AccountantOption configures a new Accountant.
type AccountantOption func(*Accountant)

// WithPausedRefill makes accrual pause while any sprint is active.
func WithPausedRefill() AccountantOption {
	return func(a *Accountant) { a.pauseWhileSprinting = true }
}

// WithSoftBudget allows the budget level to go negative (overdraft).
func WithSoftBudget() AccountantOption {
	return func(a *Accountant) { a.soft = true }
}

// WithInitialLevel starts the bucket at level instead of full capacity.
func WithInitialLevel(level float64) AccountantOption {
	return func(a *Accountant) { a.level = level }
}

// WithWindowRefill switches to window semantics: the level snaps to full
// capacity after window seconds with no sprinting; rate accrual is
// disabled.
func WithWindowRefill(window float64) AccountantOption {
	if window <= 0 {
		panic("sprint: WithWindowRefill requires a positive window")
	}
	return func(a *Accountant) { a.windowRefill = window }
}

// NewAccountant returns an accountant with the given capacity
// (sprint-seconds) and refill rate (sprint-seconds per second). The bucket
// starts full unless WithInitialLevel overrides it.
func NewAccountant(capacity, refillRate float64, opts ...AccountantOption) *Accountant {
	if capacity < 0 || refillRate < 0 || math.IsNaN(capacity) || math.IsNaN(refillRate) {
		panic(fmt.Sprintf("sprint: invalid accountant capacity=%v refill=%v", capacity, refillRate))
	}
	a := &Accountant{capacity: capacity, refillRate: refillRate, level: capacity}
	for _, opt := range opts {
		opt(a)
	}
	if a.level > a.capacity {
		a.level = a.capacity
	}
	return a
}

// Reset reinitializes a in place at virtual time zero: capacity and
// refill rate as in NewAccountant, refill semantics selected by mode
// (window is the RefillWindow snap interval and is ignored — leaving rate
// accrual in force — unless positive, mirroring how the queue simulator
// guards an unset refill time). The bucket starts full. Reset is the
// allocation-free equivalent of NewAccountant + options for reusable
// simulator runners; it does not cover soft budgets or initial levels,
// which remain option-only.
func (a *Accountant) Reset(capacity, refillRate float64, mode RefillMode, window float64) {
	if capacity < 0 || refillRate < 0 || math.IsNaN(capacity) || math.IsNaN(refillRate) {
		panic(fmt.Sprintf("sprint: invalid accountant capacity=%v refill=%v", capacity, refillRate))
	}
	*a = Accountant{capacity: capacity, refillRate: refillRate, level: capacity}
	switch mode {
	case RefillPaused:
		a.pauseWhileSprinting = true
	case RefillWindow:
		if window > 0 {
			a.windowRefill = window
		}
	}
}

// ForPolicy builds an accountant implementing p's budget clause.
func ForPolicy(p Policy, opts ...AccountantOption) *Accountant {
	if p.Soft {
		opts = append(opts, WithSoftBudget())
	}
	switch p.Refill {
	case RefillPaused:
		opts = append(opts, WithPausedRefill())
	case RefillWindow:
		if p.RefillTime > 0 {
			opts = append(opts, WithWindowRefill(p.RefillTime))
		}
	}
	return NewAccountant(p.BudgetSeconds, p.RefillRate(), opts...)
}

// netRate returns the current rate of change of the budget level.
func (a *Accountant) netRate() float64 {
	refill := a.refillRate
	if a.windowRefill > 0 {
		refill = 0 // window semantics snap instead of accruing
	}
	if a.pauseWhileSprinting && a.sprinting > 0 {
		refill = 0
	}
	return refill - float64(a.sprinting)
}

// advance integrates the level forward to time now.
func (a *Accountant) advance(now float64) {
	if now < a.last {
		panic(fmt.Sprintf("sprint: accountant time moved backwards %v -> %v", a.last, now))
	}
	dt := now - a.last
	a.last = now
	if a.windowRefill > 0 && a.sprinting == 0 && a.level < a.capacity &&
		now-a.idleSince >= a.windowRefill {
		a.level = a.capacity
	}
	//lint:ignore floateq exact fast-path: repeated events at the identical virtual time must not integrate
	if dt == 0 {
		return
	}
	a.level += a.netRate() * dt
	if a.level > a.capacity {
		a.level = a.capacity
	}
	if !a.soft && a.level < 0 {
		// Hard budgets cannot go negative; the caller is expected to
		// have stopped sprints at TimeToEmpty. Tiny numerical
		// undershoot from floating-point event times is clamped.
		a.level = 0
	}
}

// Level returns the budget level at time now.
func (a *Accountant) Level(now float64) float64 {
	a.advance(now)
	return a.level
}

// Capacity returns the bucket capacity in sprint-seconds.
func (a *Accountant) Capacity() float64 { return a.capacity }

// Sprinting returns the number of concurrently sprinting executions.
func (a *Accountant) Sprinting() int { return a.sprinting }

// MinEngageSeconds caps the minimum budget level required to engage a new
// sprint. Without a floor, a trickle of refill makes the bucket "not
// empty" for an instant and sprints thrash on and off for nanoseconds at
// a time — behaviour no real queue manager exhibits. For small buckets
// (e.g. millisecond-scale wall-clock harnesses) the effective threshold
// scales down to 2% of capacity.
const MinEngageSeconds = 1.0

// engageThreshold returns the budget level required to start a sprint.
func (a *Accountant) engageThreshold() float64 {
	return math.Min(MinEngageSeconds, 0.02*a.capacity)
}

// CanSprint reports whether a new sprint may begin at time now: hard
// budgets need at least the engage threshold; soft budgets always permit
// it (they overdraw instead).
func (a *Accountant) CanSprint(now float64) bool {
	a.advance(now)
	return a.soft || a.level >= a.engageThreshold()
}

// StartSprint registers one more sprinting execution beginning at now.
func (a *Accountant) StartSprint(now float64) {
	a.advance(now)
	a.sprinting++
}

// StopSprint registers the end of one sprinting execution at time now. It
// panics if no sprint is active.
func (a *Accountant) StopSprint(now float64) {
	a.advance(now)
	if a.sprinting == 0 {
		panic("sprint: StopSprint with no active sprint")
	}
	a.sprinting--
	if a.sprinting == 0 {
		a.idleSince = now // a fresh sprint-free window starts here
	}
}

// TimeToEmpty returns how long from now until the level reaches zero at the
// current net rate, or +Inf if the level is not decreasing (or the budget
// is soft). Simulators schedule the forced end of sprints at this horizon.
func (a *Accountant) TimeToEmpty(now float64) float64 {
	a.advance(now)
	if a.soft {
		return math.Inf(1)
	}
	rate := a.netRate()
	if rate >= 0 {
		return math.Inf(1)
	}
	if a.level <= 0 {
		return 0
	}
	return a.level / -rate
}

// TimeToLevel returns how long from now until the bucket accrues to at
// least want sprint-seconds, or +Inf if it never will at the current rate.
func (a *Accountant) TimeToLevel(now, want float64) float64 {
	a.advance(now)
	if want > a.capacity {
		return math.Inf(1)
	}
	if a.level >= want {
		return 0
	}
	rate := a.netRate()
	if rate <= 0 {
		return math.Inf(1)
	}
	return (want - a.level) / rate
}
