package sprint

import (
	"math"
	"testing"
)

func TestWindowRefillSnapsAfterIdleWindow(t *testing.T) {
	a := NewAccountant(100, 0, WithWindowRefill(600), WithInitialLevel(10))
	// No accrual while idle before the window elapses.
	if got := a.Level(599); got != 10 {
		t.Fatalf("level before window = %v, want 10", got)
	}
	// Snap to full capacity once the sprint-free window completes.
	if got := a.Level(601); got != 100 {
		t.Fatalf("level after window = %v, want 100", got)
	}
}

func TestWindowRefillInterruptedBySprint(t *testing.T) {
	a := NewAccountant(100, 0, WithWindowRefill(600))
	a.StartSprint(0)
	a.StopSprint(500) // consumed 500, level 0 at t=500... capacity 100 -> clamped
	if got := a.Level(500); got != 0 {
		t.Fatalf("level after long sprint = %v, want 0 (hard clamp)", got)
	}
	// The idle window restarts at the sprint's end: not full at 500+599.
	if got := a.Level(1099); got != 0 {
		t.Fatalf("level before restarted window = %v, want 0", got)
	}
	if got := a.Level(1101); got != 100 {
		t.Fatalf("level after restarted window = %v, want 100", got)
	}
}

func TestWindowRefillRepeatedCycles(t *testing.T) {
	a := NewAccountant(50, 0, WithWindowRefill(100))
	for cycle := 0; cycle < 3; cycle++ {
		base := float64(cycle) * 200
		if !a.CanSprint(base) {
			t.Fatalf("cycle %d: cannot sprint with full budget", cycle)
		}
		a.StartSprint(base)
		a.StopSprint(base + 30) // spend 30
		if got := a.Level(base + 30); math.Abs(got-20) > 1e-9 {
			t.Fatalf("cycle %d: level %v, want 20", cycle, got)
		}
		// Window completes 100 s after the sprint stopped.
		if got := a.Level(base + 131); got != 50 {
			t.Fatalf("cycle %d: level %v after idle window, want 50", cycle, got)
		}
	}
}

func TestWindowRefillFrequentSprintsBlockSnap(t *testing.T) {
	// Sprints recurring faster than the window keep resetting the
	// idle clock, so the budget only drains — the behaviour that makes
	// over-aggressive timeouts starve their own supply under the
	// paper's semantics. Once drained, sprinting stops, the window
	// finally completes, and the budget snaps back.
	a := NewAccountant(60, 0, WithWindowRefill(600))
	now := 0.0
	// Ten 5-second sprints, 300 s apart (well under the 600 s window).
	for i := 0; i < 10; i++ {
		if !a.CanSprint(now) {
			t.Fatalf("sprint %d: budget empty early (level %v)", i, a.Level(now))
		}
		a.StartSprint(now)
		a.StopSprint(now + 5)
		now += 300
		want := 60 - 5*float64(i+1)
		if got := a.Level(now); math.Abs(got-want) > 1e-9 {
			t.Fatalf("after sprint %d: level %v, want %v (no snap may occur)", i, got, want)
		}
	}
	// Level is now 10 < MinEngage... still >= 1; two more sprints drain
	// it; then only a full idle window restores capacity.
	a.StartSprint(now)
	a.StopSprint(now + 10) // drained to 0
	now += 10
	if a.CanSprint(now + 599) {
		t.Fatal("budget returned before the idle window completed")
	}
	if !a.CanSprint(now + 601) {
		t.Fatal("budget did not snap back after a full idle window")
	}
}

func TestForPolicyRefillModes(t *testing.T) {
	base := Policy{Timeout: 0, BudgetSeconds: 100, RefillTime: 500, Speedup: 2}

	cont := ForPolicy(base)
	cont.StartSprint(0)
	cont.StopSprint(50) // spent 50, accrued 10
	if got := cont.Level(50); math.Abs(got-60) > 1e-9 {
		t.Fatalf("continuous level %v, want 60", got)
	}

	paused := base
	paused.Refill = RefillPaused
	pa := ForPolicy(paused)
	pa.StartSprint(0)
	pa.StopSprint(50) // spent 50, no accrual during sprint
	if got := pa.Level(50); math.Abs(got-50) > 1e-9 {
		t.Fatalf("paused level %v, want 50", got)
	}

	window := base
	window.Refill = RefillWindow
	wa := ForPolicy(window)
	wa.StartSprint(0)
	wa.StopSprint(50)
	if got := wa.Level(50); math.Abs(got-50) > 1e-9 {
		t.Fatalf("window level %v, want 50", got)
	}
	if got := wa.Level(551); got != 100 {
		t.Fatalf("window level after idle window %v, want 100", got)
	}
}

func TestRefillModeStrings(t *testing.T) {
	if RefillContinuous.String() != "continuous" || RefillPaused.String() != "paused" || RefillWindow.String() != "window" {
		t.Fatal("refill mode names drifted")
	}
}

func TestWithWindowRefillValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	NewAccountant(10, 0, WithWindowRefill(0))
}
