package workload

import (
	"fmt"

	"mdsprint/internal/dist"
	"mdsprint/internal/sprint"
)

// Component is one class's share of a query mix.
type Component struct {
	Class  *Class
	Weight float64
}

// Mix is a query mix: a weighted set of classes dispatched to one server.
// Mixing workloads causes cache and bandwidth interference, so the mix's
// sustained service rate falls below the weighted mean of the kernels in
// isolation (Section 3.4 measures 35 and 30 qph for Mix I and II, far
// below the isolated averages). Interference is modelled as a uniform
// service-time inflation factor calibrated to the published mix rates.
type Mix struct {
	Name         string
	Components   []Component
	Interference float64 // service-time multiplier, >= 1
}

// SingleClass wraps one class as a trivial mix with no interference.
func SingleClass(c *Class) Mix {
	return Mix{Name: c.Name, Components: []Component{{Class: c, Weight: 1}}, Interference: 1}
}

// NewMix builds a mix of equally consequential components whose weights
// are normalised to sum to 1. If targetQPH > 0 the interference factor is
// calibrated so the mix's sustained service rate equals targetQPH;
// otherwise interference is 1.
func NewMix(name string, comps []Component, targetQPH float64) Mix {
	if len(comps) == 0 {
		panic("workload: empty mix")
	}
	total := 0.0
	for _, c := range comps {
		if c.Weight <= 0 || c.Class == nil {
			panic("workload: mix components need positive weights and classes")
		}
		total += c.Weight
	}
	norm := make([]Component, len(comps))
	for i, c := range comps {
		norm[i] = Component{Class: c.Class, Weight: c.Weight / total}
	}
	m := Mix{Name: name, Components: norm, Interference: 1}
	if targetQPH > 0 {
		base := m.SustainedRate()
		target := sprint.QPH(targetQPH)
		if target > base {
			panic(fmt.Sprintf("workload: mix %s target %v qph exceeds interference-free rate %v qph",
				name, targetQPH, sprint.ToQPH(base)))
		}
		m.Interference = base / target
	}
	return m
}

// MixI is Section 3.4's first mix: 50% Jacobi, 50% SparkStream, with the
// measured sustained service rate of 35 qph.
func MixI() Mix {
	return NewMix("MixI", []Component{
		{Class: MustByName("Jacobi"), Weight: 0.5},
		{Class: MustByName("SparkStream"), Weight: 0.5},
	}, 35)
}

// MixII is Section 3.4's second mix: even split of Jacobi, SparkStream,
// KNN and BFS, with the measured sustained rate of 30 qph.
func MixII() Mix {
	return NewMix("MixII", []Component{
		{Class: MustByName("Jacobi"), Weight: 0.25},
		{Class: MustByName("SparkStream"), Weight: 0.25},
		{Class: MustByName("KNN"), Weight: 0.25},
		{Class: MustByName("BFS"), Weight: 0.25},
	}, 30)
}

// MixJacobiMem is the Jacobi+Mem mix Section 4.3 evaluates in Figure
// 12(B) (the figure caption says Jacobi & Stream but the body text's
// analysis — CPU throttling offering low speedup for Mem — requires Mem;
// we follow the text). No published rate, so interference is estimated at
// the MixI level.
func MixJacobiMem() Mix {
	m := NewMix("Jacobi+Mem", []Component{
		{Class: MustByName("Jacobi"), Weight: 0.5},
		{Class: MustByName("Mem"), Weight: 0.5},
	}, 0)
	m.Interference = MixI().Interference
	return m
}

// MeanServiceTime returns the expected per-query processing time of the
// mix at sustained speed, including interference, in seconds.
func (m Mix) MeanServiceTime() float64 {
	t := 0.0
	for _, c := range m.Components {
		t += c.Weight * c.Class.MeanServiceTime()
	}
	return t * m.Interference
}

// SustainedRate returns the mix's aggregate sustained service rate in
// queries/second (the inverse of the mean service time).
func (m Mix) SustainedRate() float64 { return 1 / m.MeanServiceTime() }

// SustainedQPH returns the sustained rate in queries/hour.
func (m Mix) SustainedQPH() float64 { return sprint.ToQPH(m.SustainedRate()) }

// IsSingle reports whether the mix has exactly one component.
func (m Mix) IsSingle() bool { return len(m.Components) == 1 }

// Pick draws a class according to the mix weights.
func (m Mix) Pick(r *dist.RNG) *Class {
	u := r.Float64()
	acc := 0.0
	for _, c := range m.Components {
		acc += c.Weight
		if u < acc {
			return c.Class
		}
	}
	return m.Components[len(m.Components)-1].Class
}

// ServiceDist returns the service-time distribution of one class inside
// this mix at sustained speed: a log-normal with the class's CV, inflated
// by the mix's interference factor.
func (m Mix) ServiceDist(c *Class) dist.Dist {
	mean := c.MeanServiceTime() * m.Interference
	return dist.LogNormalFromMeanCV(mean, c.ServiceCV)
}

func (m Mix) String() string {
	if m.IsSingle() {
		return m.Name
	}
	return fmt.Sprintf("%s(%d classes, interference %.2f)", m.Name, len(m.Components), m.Interference)
}
