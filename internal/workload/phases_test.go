package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformPhasesFlat(t *testing.T) {
	p := UniformPhases()
	for _, w := range []float64{0, 0.3, 0.7, 1} {
		if p.Sprintability(w, false) != 1 || p.Sprintability(w, true) != 1 {
			t.Fatalf("uniform shape not flat at %v", w)
		}
	}
}

func TestSprintabilityClampsProgress(t *testing.T) {
	p := FrontLoadedPhases(2)
	if p.Sprintability(-5, false) != p.Sprintability(0, false) {
		t.Error("progress below 0 should clamp")
	}
	if p.Sprintability(5, false) != p.Sprintability(1, false) {
		t.Error("progress above 1 should clamp")
	}
}

func TestTailLimitedOnlyAffectsParallel(t *testing.T) {
	p := TailLimitedPhases(0.8, 0.5)
	if got := p.Sprintability(0.9, false); got != 1 {
		t.Errorf("frequency shape should stay uniform, got %v", got)
	}
	if got := p.Sprintability(0.9, true); got != 0.5 {
		t.Errorf("parallel tail = %v, want 0.5", got)
	}
	if got := p.Sprintability(0.5, true); got != 1 {
		t.Errorf("parallel head = %v, want 1", got)
	}
}

func TestFrontLoadedDecays(t *testing.T) {
	p := FrontLoadedPhases(3)
	if p.Sprintability(0, false) <= p.Sprintability(0.5, false) {
		t.Error("front-loaded shape should decay")
	}
	if p.Sprintability(0.5, false) <= p.Sprintability(1, false) {
		t.Error("front-loaded shape should keep decaying")
	}
}

func TestIterativeRipples(t *testing.T) {
	p := IterativePhases(4, 0.5)
	peak := p.Sprintability(0, false)
	trough := p.Sprintability(1.0/8, false) // half-period of 4 cycles
	if math.Abs(peak-1) > 1e-9 {
		t.Errorf("iterative peak = %v, want 1", peak)
	}
	if math.Abs(trough-0.5) > 1e-9 {
		t.Errorf("iterative trough = %v, want 0.5", trough)
	}
}

func TestPhaseConstructorsValidate(t *testing.T) {
	for name, fn := range map[string]func(){
		"iterative n=0":       func() { IterativePhases(0, 0.5) },
		"iterative depth>=1":  func() { IterativePhases(3, 1) },
		"tail knee=0":         func() { TailLimitedPhases(0, 0.5) },
		"tail level=0":        func() { TailLimitedPhases(0.5, 0) },
		"frontloaded decay=0": func() { FrontLoadedPhases(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSprintCurveMarginalSpeedupExact(t *testing.T) {
	// Whatever the shape, a whole-execution sprint must deliver exactly
	// the marginal speedup — that is the normalisation contract.
	shapes := map[string]PhaseShape{
		"uniform":     UniformPhases(),
		"frontloaded": FrontLoadedPhases(3),
		"taillimited": TailLimitedPhases(0.89, 0.45),
		"iterative":   IterativePhases(8, 0.75),
	}
	for name, shape := range shapes {
		for _, s := range []float64{1, 1.16, 1.45, 2.57, 5} {
			for _, par := range []bool{false, true} {
				c := NewSprintCurve(shape.Shape(par), s)
				total := 100.0
				sprinted := c.SprintedRemaining(total, 0)
				want := total / s
				if math.Abs(sprinted-want)/want > 0.01 {
					t.Errorf("%s s=%v par=%v: full sprint %v, want %v", name, s, par, sprinted, want)
				}
			}
		}
	}
}

func TestSprintCurveEffectiveSpeedupAtZeroIsMarginal(t *testing.T) {
	c := NewSprintCurve(FrontLoadedPhases(3).Shape(false), 2)
	if got := c.EffectiveSpeedupFrom(0); math.Abs(got-2)/2 > 0.01 {
		t.Fatalf("speedup from 0 = %v, want 2", got)
	}
}

func TestSprintCurveLateSprintsWeaker(t *testing.T) {
	// Front-loaded workloads: a sprint starting late covers only
	// sprint-unfriendly phases, so the effective speedup must shrink.
	c := NewSprintCurve(FrontLoadedPhases(3).Shape(false), 1.16)
	early := c.EffectiveSpeedupFrom(0.1)
	late := c.EffectiveSpeedupFrom(0.8)
	if late >= early {
		t.Fatalf("late sprint speedup %v should be below early %v", late, early)
	}
	if late < 1 {
		t.Fatalf("speedup %v below 1", late)
	}
}

func TestSprintCurveJacobiCoreScaleTail(t *testing.T) {
	// Section 3.3: Jacobi under core scaling has marginal speedup 1.87x,
	// but sprinting only the tail (last ~11%) yields about 1.5x.
	shape := TailLimitedPhases(0.89, 0.45).Shape(true)
	c := NewSprintCurve(shape, 1.87)
	tail := c.EffectiveSpeedupFrom(0.89)
	if tail >= 1.7 || tail <= 1.2 {
		t.Fatalf("tail-only speedup %v, want roughly 1.5 (well below 1.87)", tail)
	}
	full := c.EffectiveSpeedupFrom(0)
	if math.Abs(full-1.87)/1.87 > 0.01 {
		t.Fatalf("full speedup %v, want 1.87", full)
	}
}

func TestSprintCurveUniformPositionIndependent(t *testing.T) {
	c := NewSprintCurve(UniformPhases().Shape(false), 2.5)
	for _, tau := range []float64{0, 0.25, 0.5, 0.9} {
		if got := c.EffectiveSpeedupFrom(tau); math.Abs(got-2.5)/2.5 > 0.01 {
			t.Errorf("uniform curve speedup at tau=%v is %v, want 2.5", tau, got)
		}
	}
}

func TestSprintCurveSpeedupOne(t *testing.T) {
	c := NewSprintCurve(FrontLoadedPhases(2).Shape(false), 1)
	if got := c.SprintedRemaining(50, 0.5); math.Abs(got-25) > 1e-9 {
		t.Fatalf("speedup-1 remaining = %v, want 25", got)
	}
}

func TestSprintCurveProgressAfter(t *testing.T) {
	c := NewSprintCurve(UniformPhases().Shape(false), 2)
	// Uniform speedup 2: sprinting 10 s of a 100 s job covers 20% work.
	got := c.ProgressAfter(100, 0, 10)
	if math.Abs(got-0.2) > 0.01 {
		t.Fatalf("progress after 10 s = %v, want 0.2", got)
	}
	// Long enough sprint finishes the job.
	if got := c.ProgressAfter(100, 0.5, 1000); got != 1 {
		t.Fatalf("overlong sprint progress = %v, want 1", got)
	}
}

// Property: remaining sprinted time is monotone decreasing in tau, and
// effective speedup stays within [1, marginal*2] for sane shapes.
func TestSprintCurveMonotoneProperty(t *testing.T) {
	curves := []*SprintCurve{
		NewSprintCurve(UniformPhases().Shape(false), 1.8),
		NewSprintCurve(FrontLoadedPhases(3).Shape(false), 1.3),
		NewSprintCurve(TailLimitedPhases(0.7, 0.3).Shape(true), 1.9),
	}
	f := func(t1Raw, t2Raw uint8, ci uint8) bool {
		c := curves[int(ci)%len(curves)]
		t1 := float64(t1Raw) / 255
		t2 := float64(t2Raw) / 255
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		r1 := c.SprintedRemaining(100, t1)
		r2 := c.SprintedRemaining(100, t2)
		if r2 > r1+1e-9 {
			return false
		}
		sp := c.EffectiveSpeedupFrom(t1)
		return sp >= 1-1e-9 && sp <= c.MarginalSpeedup()*2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNewSprintCurveValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("speedup < 1 did not panic")
		}
	}()
	NewSprintCurve(uniform, 0.5)
}
