// Package workload models the cloud-server workloads of Table 1(C): the
// two Spark services and five HPC kernels the paper profiles, plus the
// mixed workloads of Section 3.4. Each class carries the published
// sustained and burst throughput on the DVFS platform, a service-time
// variability, an execution phase profile (how sprint-friendly each part
// of an execution is), and the architectural properties (serial fraction,
// compute-boundness) that determine speedups under the other sprinting
// mechanisms.
//
// The phase profile is the load-bearing piece of the testbed substitution:
// sprints that engage mid-execution traverse only the remaining phases, so
// the speedup actually observed (the paper's "effective sprint rate")
// differs from the whole-execution ("marginal") speedup. See DESIGN.md §2.
package workload

import (
	"fmt"

	"mdsprint/internal/sprint"
)

// Class describes one query type.
type Class struct {
	// Name identifies the workload (Table 1C IDs).
	Name string

	// SustainedQPH and BurstQPH are the paper's measured throughput on
	// the DVFS platform at the sustained power cap and during a
	// whole-execution sprint, in queries per hour.
	SustainedQPH float64
	BurstQPH     float64

	// ServiceCV is the coefficient of variation of service time.
	// Jacobi and Leuk are near-deterministic kernels; the Spark
	// services vary more (Section 3.2 notes low-variance workloads).
	ServiceCV float64

	// SerialFraction is the Amdahl serial fraction, which bounds the
	// speedup from core scaling (8 to 16 active cores).
	SerialFraction float64

	// ComputeBoundness in [0,1] scales how much of a frequency boost
	// (DVFS-style mechanisms) translates into throughput. Memory- and
	// synchronisation-bound kernels waste most of a frequency bump.
	ComputeBoundness float64

	// MaxThrottleSpeedup caps the speedup CPU throttling can deliver:
	// unthrottling a memory-bound workload saturates bandwidth before
	// reaching the nominal 1/throttle-fraction speedup.
	MaxThrottleSpeedup float64

	// Phases describes relative sprint-friendliness across execution
	// progress. See PhaseShape.
	Phases PhaseShape
}

// SustainedRate returns the sustained processing rate in queries/second.
func (c *Class) SustainedRate() float64 { return sprint.QPH(c.SustainedQPH) }

// MeanServiceTime returns the mean per-query processing time at the
// sustained rate, in seconds.
func (c *Class) MeanServiceTime() float64 { return 1 / c.SustainedRate() }

// DVFSSpeedup returns the whole-execution (marginal) speedup from DVFS
// sprinting, straight from Table 1C.
func (c *Class) DVFSSpeedup() float64 { return c.BurstQPH / c.SustainedQPH }

func (c *Class) String() string {
	return fmt.Sprintf("%s (%.0f/%.0f qph)", c.Name, c.SustainedQPH, c.BurstQPH)
}

// Catalog returns the seven workloads of Table 1(C) in paper order. The
// throughput columns are the published values; the remaining fields encode
// the paper's qualitative characterisations (compute-intensive, memory
// bandwidth constrained, synchronisation limited, strong phases).
func Catalog() []*Class {
	return []*Class{
		{
			Name:         "SparkStream",
			SustainedQPH: 87, BurstQPH: 224,
			ServiceCV:      0.30,
			SerialFraction: 0.05, ComputeBoundness: 1.0,
			MaxThrottleSpeedup: 6,
			Phases:             UniformPhases(),
		},
		{
			Name:         "SparkKmeans",
			SustainedQPH: 73, BurstQPH: 144,
			ServiceCV:      0.35,
			SerialFraction: 0.10, ComputeBoundness: 0.95,
			MaxThrottleSpeedup: 6,
			// K-means iterations: assignment phases sprint well,
			// update/shuffle phases less so.
			Phases: IterativePhases(8, 0.75),
		},
		{
			Name:         "Jacobi",
			SustainedQPH: 51, BurstQPH: 74,
			ServiceCV:      0.08,
			SerialFraction: 0.07, ComputeBoundness: 0.90,
			MaxThrottleSpeedup: 5,
			// Compute-intensive with good locality; under core
			// scaling the final reduction exposes Amdahl's law
			// (Section 3.3: last ~11% of the kernel speeds up
			// 1.5x instead of 1.87x). The tail weight applies
			// only to parallelism-based mechanisms.
			Phases: TailLimitedPhases(0.89, 0.45),
		},
		{
			Name:         "KNN",
			SustainedQPH: 40, BurstQPH: 71,
			ServiceCV:      0.25,
			SerialFraction: 0.12, ComputeBoundness: 0.85,
			MaxThrottleSpeedup: 5,
			Phases:             UniformPhases(),
		},
		{
			Name:         "BFS",
			SustainedQPH: 28, BurstQPH: 41,
			ServiceCV:      0.30,
			SerialFraction: 0.35, ComputeBoundness: 0.55,
			MaxThrottleSpeedup: 3.5,
			// Frontier expansion: sprintability varies with
			// frontier size across the traversal.
			Phases: IterativePhases(5, 0.6),
		},
		{
			Name:         "Mem",
			SustainedQPH: 28, BurstQPH: 37,
			ServiceCV:      0.15,
			SerialFraction: 0.50, ComputeBoundness: 0.40,
			MaxThrottleSpeedup: 3.0,
			Phases:             UniformPhases(),
		},
		{
			Name:         "Leuk",
			SustainedQPH: 25, BurstQPH: 29,
			ServiceCV:      0.05,
			SerialFraction: 0.60, ComputeBoundness: 0.30,
			MaxThrottleSpeedup: 2.5,
			// Strong execution phases (Section 3.2): the early
			// detection stages sprint well, the late tracking
			// stages are synchronisation-bound. Late timeouts that
			// sprint only the tail see far below marginal speedup.
			Phases: FrontLoadedPhases(3.0),
		},
	}
}

// ByName returns the catalog entry with the given name, or an error naming
// the available classes.
func ByName(name string) (*Class, error) {
	for _, c := range Catalog() {
		if c.Name == name {
			return c, nil
		}
	}
	names := make([]string, 0, 7)
	for _, c := range Catalog() {
		names = append(names, c.Name)
	}
	return nil, fmt.Errorf("workload: unknown class %q (have %v)", name, names)
}

// MustByName is ByName for static names in experiments; it panics on error.
func MustByName(name string) *Class {
	c, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return c
}
