package workload

import (
	"fmt"
	"math"
)

// minSprintability floors the phase shapes so every point of an execution
// benefits at least slightly from sprinting, keeping the speedup
// normalisation solvable.
const minSprintability = 0.05

// PhaseShape describes how sprint-friendly each part of a query execution
// is, as a function of normalised progress w in [0, 1]. Two curves are
// kept because the bottleneck differs by mechanism family: a frequency
// boost (DVFS, CPU throttling) is insensitive to parallelism structure,
// while core scaling is throttled wherever the program runs few threads
// (Amdahl phases, Section 3.3).
type PhaseShape struct {
	// Desc names the shape for diagnostics.
	Desc string

	freq     func(w float64) float64
	parallel func(w float64) float64
}

// Sprintability returns the relative sprint-friendliness at progress w
// under the given mechanism family. Values are relative weights (mean ~1
// over [0,1]); the absolute speedup scaling happens in SprintCurve.
func (p PhaseShape) Sprintability(w float64, parallelismBased bool) float64 {
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	f := p.freq
	if parallelismBased {
		f = p.parallel
	}
	v := f(w)
	if v < minSprintability {
		v = minSprintability
	}
	return v
}

// Shape returns the raw curve for the mechanism family, floored at
// minSprintability.
func (p PhaseShape) Shape(parallelismBased bool) func(float64) float64 {
	return func(w float64) float64 { return p.Sprintability(w, parallelismBased) }
}

func uniform(float64) float64 { return 1 }

// UniformPhases is a flat profile: every part of the execution sprints
// equally well. Marginal and position-conditional speedups coincide.
func UniformPhases() PhaseShape {
	return PhaseShape{Desc: "uniform", freq: uniform, parallel: uniform}
}

// IterativePhases models iteration-structured workloads (K-means rounds,
// BFS frontier levels): sprintability ripples sinusoidally through n
// iterations, dipping to (1-depth) of peak in the synchronisation/shuffle
// portions. depth in [0,1).
func IterativePhases(n int, depth float64) PhaseShape {
	if n < 1 || depth < 0 || depth >= 1 {
		panic(fmt.Sprintf("workload: IterativePhases(n=%d, depth=%v) invalid", n, depth))
	}
	f := func(w float64) float64 {
		return 1 - depth/2 + depth/2*math.Cos(2*math.Pi*float64(n)*w)
	}
	return PhaseShape{Desc: fmt.Sprintf("iterative(n=%d,depth=%.2f)", n, depth), freq: f, parallel: f}
}

// TailLimitedPhases models kernels whose final reduction exposes Amdahl's
// law under core scaling: sprintability is 1 before knee and tailLevel
// after it, but only for parallelism-based mechanisms. Frequency-based
// sprinting sees a uniform profile. knee and tailLevel in (0,1].
func TailLimitedPhases(knee, tailLevel float64) PhaseShape {
	if knee <= 0 || knee >= 1 || tailLevel <= 0 || tailLevel > 1 {
		panic(fmt.Sprintf("workload: TailLimitedPhases(%v,%v) invalid", knee, tailLevel))
	}
	par := func(w float64) float64 {
		if w < knee {
			return 1
		}
		return tailLevel
	}
	return PhaseShape{
		Desc:     fmt.Sprintf("tail-limited(knee=%.2f,tail=%.2f)", knee, tailLevel),
		freq:     uniform,
		parallel: par,
	}
}

// FrontLoadedPhases models workloads with strong early compute phases and
// synchronisation-bound tails (Leukocyte tracking): sprintability decays
// exponentially with progress at the given rate, for every mechanism.
// Sprints triggered by late timeouts land after the sprint-friendly phases
// have passed — the behaviour Section 3.2 calls out.
func FrontLoadedPhases(decay float64) PhaseShape {
	if decay <= 0 {
		panic(fmt.Sprintf("workload: FrontLoadedPhases(%v) requires decay > 0", decay))
	}
	// Normalise to mean 1 over [0,1]: integral of exp(-d w) is (1-e^-d)/d.
	norm := decay / (1 - math.Exp(-decay))
	f := func(w float64) float64 { return norm * math.Exp(-decay*w) }
	return PhaseShape{Desc: fmt.Sprintf("front-loaded(decay=%.2f)", decay), freq: f, parallel: f}
}

// SprintCurve precomputes, for one (workload, mechanism) pair with marginal
// speedup S, how much wall-clock time the remainder of an execution takes
// when sprinted from any progress point. The instantaneous processing-rate
// multiplier is
//
//	r(w) = 1 + (S-1) * k * g(w)
//
// with g the phase shape and k solved so that sprinting a whole execution
// speeds it up by exactly S (the marginal sprint rate the profiler
// measures). Remaining-time integrals are tabulated on a fixed grid.
type SprintCurve struct {
	speedup float64
	// cum[i] = integral from 0 to w_i of dw / r(w), in units of the
	// sustained execution time; cum[gridN] == 1/speedup by construction.
	cum []float64
}

// gridN is the tabulation resolution for sprint curves.
const gridN = 512

// NewSprintCurve builds the curve for shape g (strictly positive on [0,1])
// and marginal speedup S >= 1.
func NewSprintCurve(g func(float64) float64, s float64) *SprintCurve {
	if s < 1 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("workload: sprint speedup %v must be finite and >= 1", s))
	}
	c := &SprintCurve{speedup: s}
	//lint:ignore floateq exactly 1 selects the degenerate no-op curve; near-1 speedups must still tabulate the real shape
	if s == 1 {
		// Sprinting is a no-op; remaining time equals sustained time.
		c.cum = linspaceCum(func(float64) float64 { return 1 })
		return c
	}
	// Normalise g to mean 1 on the grid, then solve k so the full
	// integral hits 1/s.
	gs := make([]float64, gridN+1)
	mean := 0.0
	for i := 0; i <= gridN; i++ {
		gs[i] = g(float64(i) / gridN)
		if gs[i] <= 0 {
			panic("workload: phase shape must be strictly positive")
		}
	}
	for i := 0; i < gridN; i++ {
		mean += (gs[i] + gs[i+1]) / 2
	}
	mean /= gridN
	for i := range gs {
		gs[i] /= mean
	}
	integralAt := func(k float64) float64 {
		total := 0.0
		prev := 1 / (1 + (s-1)*k*gs[0])
		for i := 1; i <= gridN; i++ {
			cur := 1 / (1 + (s-1)*k*gs[i])
			total += (prev + cur) / 2 / gridN
			prev = cur
		}
		return total
	}
	// integralAt is strictly decreasing in k; bracket then bisect.
	lo, hi := 0.0, 1.0
	for integralAt(hi) > 1/s {
		hi *= 2
		if hi > 1e9 {
			panic("workload: sprint-curve normalisation did not converge")
		}
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if integralAt(mid) > 1/s {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	c.cum = linspaceCum(func(w float64) float64 {
		gi := gs[int(math.Round(w*gridN))]
		return 1 / (1 + (s-1)*k*gi)
	})
	return c
}

// linspaceCum tabulates the cumulative trapezoid integral of f over [0,1].
func linspaceCum(f func(float64) float64) []float64 {
	cum := make([]float64, gridN+1)
	prev := f(0)
	for i := 1; i <= gridN; i++ {
		cur := f(float64(i) / gridN)
		cum[i] = cum[i-1] + (prev+cur)/2/gridN
		prev = cur
	}
	return cum
}

// MarginalSpeedup returns S, the whole-execution speedup.
func (c *SprintCurve) MarginalSpeedup() float64 { return c.speedup }

// cumAt linearly interpolates the tabulated integral at progress w.
func (c *SprintCurve) cumAt(w float64) float64 {
	if w <= 0 {
		return 0
	}
	if w >= 1 {
		return c.cum[gridN]
	}
	pos := w * gridN
	i := int(pos)
	frac := pos - float64(i)
	return c.cum[i]*(1-frac) + c.cum[i+1]*frac
}

// SprintedRemaining returns the wall-clock time to finish an execution
// whose total sustained duration is total, sprinting from progress tau
// (fraction of work complete) to the end.
func (c *SprintCurve) SprintedRemaining(total, tau float64) float64 {
	return total * (c.cumAt(1) - c.cumAt(tau))
}

// EffectiveSpeedupFrom returns the average speedup over the remainder of
// an execution when the sprint starts at progress tau: remaining sustained
// time divided by remaining sprinted time. At tau = 0 this equals the
// marginal speedup; for phase-limited workloads it shrinks as tau grows.
func (c *SprintCurve) EffectiveSpeedupFrom(tau float64) float64 {
	if tau >= 1 {
		return 1
	}
	rem := c.cumAt(1) - c.cumAt(tau)
	if rem <= 0 {
		return 1
	}
	return (1 - tau) / rem
}

// ProgressAfter returns the progress reached after sprinting for dt
// wall-clock seconds from progress tau in an execution whose sustained
// duration is total. It inverts the cumulative integral numerically and
// caps at 1.
func (c *SprintCurve) ProgressAfter(total, tau, dt float64) float64 {
	if total <= 0 {
		return 1
	}
	target := c.cumAt(tau) + dt/total
	if target >= c.cumAt(1) {
		return 1
	}
	// Binary search the grid for the progress whose integral is target.
	lo, hi := tau, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if c.cumAt(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
