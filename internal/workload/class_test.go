package workload

import (
	"math"
	"strings"
	"testing"
)

func TestCatalogMatchesTable1C(t *testing.T) {
	// Sustained/burst throughput on DVFS straight from Table 1(C).
	want := []struct {
		name             string
		sustained, burst float64
	}{
		{"SparkStream", 87, 224},
		{"SparkKmeans", 73, 144},
		{"Jacobi", 51, 74},
		{"KNN", 40, 71},
		{"BFS", 28, 41},
		{"Mem", 28, 37},
		{"Leuk", 25, 29},
	}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d classes, want %d", len(cat), len(want))
	}
	for i, w := range want {
		c := cat[i]
		if c.Name != w.name || c.SustainedQPH != w.sustained || c.BurstQPH != w.burst {
			t.Errorf("catalog[%d] = %v, want %s %v/%v", i, c, w.name, w.sustained, w.burst)
		}
	}
}

func TestDVFSSpeedupsAreSane(t *testing.T) {
	for _, c := range Catalog() {
		s := c.DVFSSpeedup()
		if s <= 1 || s > 3 {
			t.Errorf("%s: DVFS speedup %v outside (1,3]", c.Name, s)
		}
	}
	// The paper's ordering: Spark workloads speed up most, Leuk least.
	if Catalog()[0].DVFSSpeedup() < Catalog()[6].DVFSSpeedup() {
		t.Error("SparkStream should out-speed Leuk under DVFS")
	}
}

func TestMeanServiceTime(t *testing.T) {
	jacobi := MustByName("Jacobi")
	want := 3600.0 / 51
	if got := jacobi.MeanServiceTime(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Jacobi mean service time %v, want %v", got, want)
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("NoSuchKernel"); err == nil {
		t.Fatal("expected error for unknown class")
	} else if !strings.Contains(err.Error(), "SparkStream") {
		t.Fatalf("error should list available classes: %v", err)
	}
	c, err := ByName("Leuk")
	if err != nil || c.Name != "Leuk" {
		t.Fatalf("ByName(Leuk) = %v, %v", c, err)
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName should panic on unknown name")
		}
	}()
	MustByName("bogus")
}

func TestClassFieldsWithinModelRanges(t *testing.T) {
	for _, c := range Catalog() {
		if c.ServiceCV < 0 || c.ServiceCV > 1 {
			t.Errorf("%s: ServiceCV %v outside [0,1]", c.Name, c.ServiceCV)
		}
		if c.SerialFraction < 0 || c.SerialFraction >= 1 {
			t.Errorf("%s: SerialFraction %v outside [0,1)", c.Name, c.SerialFraction)
		}
		if c.ComputeBoundness <= 0 || c.ComputeBoundness > 1 {
			t.Errorf("%s: ComputeBoundness %v outside (0,1]", c.Name, c.ComputeBoundness)
		}
		if c.MaxThrottleSpeedup < 1 {
			t.Errorf("%s: MaxThrottleSpeedup %v < 1", c.Name, c.MaxThrottleSpeedup)
		}
	}
}

func TestMemoryBoundOrdering(t *testing.T) {
	// Memory/sync-bound kernels must be less compute-bound than the
	// Spark services (the paper's qualitative characterisation).
	stream := MustByName("SparkStream")
	for _, name := range []string{"BFS", "Mem", "Leuk"} {
		c := MustByName(name)
		if c.ComputeBoundness >= stream.ComputeBoundness {
			t.Errorf("%s compute-boundness %v >= SparkStream %v", name, c.ComputeBoundness, stream.ComputeBoundness)
		}
	}
}
