package workload

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
)

func TestMixIMatchesPaperRate(t *testing.T) {
	m := MixI()
	if got := m.SustainedQPH(); math.Abs(got-35) > 0.01 {
		t.Fatalf("Mix I sustained rate %v qph, want 35 (Section 3.4)", got)
	}
	if m.Interference <= 1 {
		t.Fatalf("Mix I interference %v, want > 1", m.Interference)
	}
}

func TestMixIIMatchesPaperRate(t *testing.T) {
	m := MixII()
	if got := m.SustainedQPH(); math.Abs(got-30) > 0.01 {
		t.Fatalf("Mix II sustained rate %v qph, want 30", got)
	}
	if len(m.Components) != 4 {
		t.Fatalf("Mix II has %d components, want 4", len(m.Components))
	}
}

func TestMixRateBelowIsolatedAverage(t *testing.T) {
	// Section 3.4: sustained rate for each mix falls below the average
	// of the kernels in isolation due to interference.
	for _, m := range []Mix{MixI(), MixII()} {
		avg := 0.0
		for _, c := range m.Components {
			avg += c.Weight * c.Class.SustainedQPH
		}
		if m.SustainedQPH() >= avg {
			t.Errorf("%s: mix rate %v >= isolated average %v", m.Name, m.SustainedQPH(), avg)
		}
	}
}

func TestSingleClassMix(t *testing.T) {
	c := MustByName("Jacobi")
	m := SingleClass(c)
	if !m.IsSingle() {
		t.Fatal("single-class mix not single")
	}
	if math.Abs(m.SustainedQPH()-51) > 1e-9 {
		t.Fatalf("single mix rate %v, want 51", m.SustainedQPH())
	}
	if m.Pick(dist.NewRNG(1)) != c {
		t.Fatal("Pick must return the only class")
	}
}

func TestMixWeightsNormalised(t *testing.T) {
	m := NewMix("w", []Component{
		{Class: MustByName("Jacobi"), Weight: 2},
		{Class: MustByName("Mem"), Weight: 6},
	}, 0)
	if math.Abs(m.Components[0].Weight-0.25) > 1e-12 || math.Abs(m.Components[1].Weight-0.75) > 1e-12 {
		t.Fatalf("weights not normalised: %+v", m.Components)
	}
}

func TestMixPickFollowsWeights(t *testing.T) {
	m := NewMix("w", []Component{
		{Class: MustByName("Jacobi"), Weight: 0.2},
		{Class: MustByName("Mem"), Weight: 0.8},
	}, 0)
	r := dist.NewRNG(42)
	const n = 100000
	memCount := 0
	for i := 0; i < n; i++ {
		if m.Pick(r).Name == "Mem" {
			memCount++
		}
	}
	frac := float64(memCount) / n
	if math.Abs(frac-0.8) > 0.01 {
		t.Fatalf("Mem picked %v of draws, want ~0.8", frac)
	}
}

func TestMixValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":          func() { NewMix("x", nil, 0) },
		"zero weight":    func() { NewMix("x", []Component{{Class: MustByName("Jacobi"), Weight: 0}}, 0) },
		"nil class":      func() { NewMix("x", []Component{{Class: nil, Weight: 1}}, 0) },
		"target too big": func() { NewMix("x", []Component{{Class: MustByName("Jacobi"), Weight: 1}}, 1000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestServiceDistReflectsInterference(t *testing.T) {
	m := MixI()
	jacobi := MustByName("Jacobi")
	d := m.ServiceDist(jacobi)
	want := jacobi.MeanServiceTime() * m.Interference
	if got := d.Mean(); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("mix service mean %v, want %v", got, want)
	}
	solo := SingleClass(jacobi).ServiceDist(jacobi)
	if solo.Mean() >= d.Mean() {
		t.Fatal("interference must inflate service time")
	}
}

func TestMixJacobiMem(t *testing.T) {
	m := MixJacobiMem()
	names := map[string]bool{}
	for _, c := range m.Components {
		names[c.Class.Name] = true
	}
	if !names["Jacobi"] || !names["Mem"] {
		t.Fatalf("MixJacobiMem components: %+v", m.Components)
	}
	if m.Interference <= 1 {
		t.Fatal("MixJacobiMem should inherit interference > 1")
	}
}

func TestMeanServiceTimeIsWeightedAverage(t *testing.T) {
	m := NewMix("x", []Component{
		{Class: MustByName("Jacobi"), Weight: 0.5},
		{Class: MustByName("SparkStream"), Weight: 0.5},
	}, 0)
	want := 0.5*(3600.0/51) + 0.5*(3600.0/87)
	if got := m.MeanServiceTime(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean service %v, want %v", got, want)
	}
}
