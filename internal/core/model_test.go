package core

import (
	"math"
	"testing"

	"mdsprint/internal/ann"
	"mdsprint/internal/calib"
	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/stats"
	"mdsprint/internal/workload"
)

// testCalib keeps calibration affordable in unit tests.
var testCalib = calib.Options{NumQueries: 1500, Replications: 2, Tolerance: 0.015, Seed: 3}

// profileJacobi builds a small Jacobi/DVFS dataset.
func profileJacobi(t *testing.T, n int) *profiler.Dataset {
	t.Helper()
	p := &profiler.Profiler{
		Mix:           workload.SingleClass(workload.MustByName("Jacobi")),
		Mechanism:     mech.DVFS{},
		QueriesPerRun: 1000,
		Seed:          11,
	}
	return p.Profile(profiler.PaperGrid().Sample(n, 5))
}

func TestFeaturesMatchNames(t *testing.T) {
	ds := &profiler.Dataset{ServiceRate: 0.01, MarginalRate: 0.015}
	sc := Scenario{Cond: profiler.Condition{
		Utilization: 0.5, ArrivalKind: dist.KindPareto,
		Timeout: 60, RefillTime: 200, BudgetPct: 0.2,
	}}
	f := Features(ds, sc)
	if len(f) != len(FeatureNames()) {
		t.Fatalf("%d features vs %d names", len(f), len(FeatureNames()))
	}
	// Spot-check a few encodings.
	if f[0] != 0.005 { // lambda = util * mu
		t.Errorf("lambda feature %v, want 0.005", f[0])
	}
	if f[1] != 0.5 {
		t.Errorf("utilization feature %v", f[1])
	}
	if f[10] != 1 {
		t.Errorf("pareto flag %v, want 1", f[10])
	}
	if f[9] != 0.2*200 {
		t.Errorf("budget seconds %v, want 40", f[9])
	}
}

func TestScenarioArrivalRateResolution(t *testing.T) {
	ds := &profiler.Dataset{ServiceRate: 0.02}
	explicit := Scenario{ArrivalRate: 0.007}
	if got := explicit.arrivalRate(ds); got != 0.007 {
		t.Fatalf("explicit rate %v", got)
	}
	derived := Scenario{Cond: profiler.Condition{Utilization: 0.75}}
	if got := derived.arrivalRate(ds); math.Abs(got-0.015) > 1e-12 {
		t.Fatalf("derived rate %v, want 0.015", got)
	}
}

func TestHybridEndToEndAccuracy(t *testing.T) {
	ds := profileJacobi(t, 24)
	train, test := profiler.SplitObservations(ds.Observations, 0.8, 7)
	h, err := TrainHybrid([]TrainingSet{{Dataset: ds, Observations: train}}, HybridOptions{
		Calib:      testCalib,
		SimQueries: 2500,
		SimReps:    2,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(h, ds, test)
	if err != nil {
		t.Fatal(err)
	}
	med := stats.Median(ev.Errors)
	if med > 0.15 {
		t.Fatalf("hybrid median error %.1f%% on held-out conditions (errors %v)", med*100, ev.Errors)
	}
}

func TestHybridBeatsNoMLUnderLoad(t *testing.T) {
	// At high utilization the interdependence between queueing and
	// sprint speedup is strongest; the marginal rate overestimates
	// sprint benefit and No-ML should trail the hybrid model
	// (Section 3.1, Figure 7).
	p := &profiler.Profiler{
		Mix:           workload.SingleClass(workload.MustByName("Leuk")),
		Mechanism:     mech.DVFS{},
		QueriesPerRun: 1000,
		Seed:          13,
	}
	grid := profiler.Grid{
		Utilizations: []float64{0.75, 0.95},
		ArrivalKinds: []dist.Kind{dist.KindExponential},
		Timeouts:     []float64{50, 120, 160},
		RefillTimes:  []float64{200, 800},
		BudgetPcts:   []float64{0.2, 0.6},
	}
	ds := p.Profile(grid.Conditions())
	train, test := profiler.SplitObservations(ds.Observations, 0.7, 3)
	h, err := TrainHybrid([]TrainingSet{{Dataset: ds, Observations: train}}, HybridOptions{
		Calib: testCalib, SimQueries: 2500, SimReps: 2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	noml := &NoML{SimQueries: 2500, SimReps: 2, Seed: 17}
	evH, err := Evaluate(h, ds, test)
	if err != nil {
		t.Fatal(err)
	}
	evN, err := Evaluate(noml, ds, test)
	if err != nil {
		t.Fatal(err)
	}
	mh, mn := stats.Median(evH.Errors), stats.Median(evN.Errors)
	if mh >= mn {
		t.Fatalf("hybrid (%.1f%%) should beat No-ML (%.1f%%) on a phase-heavy workload", mh*100, mn*100)
	}
}

func TestANNTrainsAndPredicts(t *testing.T) {
	ds := profileJacobi(t, 16)
	train, test := profiler.SplitObservations(ds.Observations, 0.8, 21)
	model, err := TrainANN(
		[]TrainingSet{{Dataset: ds, Observations: train}},
		ann.Config{HiddenLayers: 3, Width: 24, Epochs: 400, Seed: 23},
	)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(model, ds, test)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ev.Predicted {
		if math.IsNaN(p) || p < 0 {
			t.Fatalf("prediction %d invalid: %v", i, p)
		}
	}
}

func TestEffectiveRateClamped(t *testing.T) {
	ds := profileJacobi(t, 10)
	train := ds.Observations
	h, err := TrainHybrid([]TrainingSet{{Dataset: ds, Observations: train}}, HybridOptions{
		Calib: testCalib, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, obs := range ds.Observations {
		rate := h.EffectiveRate(ds, Scenario{Cond: obs.Cond, ArrivalRate: obs.ArrivalRate})
		if rate < 0.5*ds.ServiceRate || rate > 3*ds.MarginalRate {
			t.Fatalf("effective rate %v outside [0.5*mu, 3*mu_m]", rate)
		}
	}
}

func TestHybridRecordsAndImportances(t *testing.T) {
	ds := profileJacobi(t, 10)
	h, err := TrainHybrid([]TrainingSet{{Dataset: ds, Observations: ds.Observations}}, HybridOptions{
		Calib: testCalib, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records()) != len(ds.Observations) {
		t.Fatalf("%d records for %d observations", len(h.Records()), len(ds.Observations))
	}
	imps := h.Importances()
	if len(imps) != len(FeatureNames()) {
		t.Fatalf("%d importances", len(imps))
	}
}

func TestTrainHybridValidation(t *testing.T) {
	if _, err := TrainHybrid(nil, HybridOptions{}); err == nil {
		t.Fatal("empty training sets accepted")
	}
	if _, err := TrainHybrid([]TrainingSet{{Dataset: &profiler.Dataset{}, Observations: nil}}, HybridOptions{}); err == nil {
		t.Fatal("zero observations accepted")
	}
}

func TestTrainANNValidation(t *testing.T) {
	if _, err := TrainANN(nil, ann.Config{}); err == nil {
		t.Fatal("empty ANN training accepted")
	}
}

func TestEvaluateErrorsConsistent(t *testing.T) {
	ds := profileJacobi(t, 8)
	noml := &NoML{SimQueries: 1500, SimReps: 1, Seed: 37}
	ev, err := Evaluate(noml, ds, ds.Observations)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Errors) != len(ds.Observations) {
		t.Fatalf("%d errors for %d observations", len(ev.Errors), len(ds.Observations))
	}
	for i := range ev.Errors {
		want := math.Abs(ev.Predicted[i]-ev.Observed[i]) / ev.Observed[i]
		if math.Abs(ev.Errors[i]-want) > 1e-12 {
			t.Fatalf("error %d inconsistent", i)
		}
	}
}

func TestModelNames(t *testing.T) {
	if (&NoML{}).Name() != "No-ML" || (&ANN{}).Name() != "ANN" || (&Hybrid{}).Name() != "Hybrid" {
		t.Fatal("model names drifted from Table 1(A)")
	}
}
