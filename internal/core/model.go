// Package core implements model-driven computational sprinting, the
// paper's contribution: performance models that map sprinting policies and
// workload conditions to expected response time, so policies can be
// compared without deploying them (Figure 2).
//
// Three models are provided behind one interface, mirroring Table 1(A):
//
//   - Hybrid — the paper's approach: workload profiling feeds an
//     effective-sprint-rate calibration (internal/calib); a random
//     decision forest (internal/forest) learns effective sprint rate from
//     conditions and policies; a timeout-aware queue simulator
//     (internal/queuesim) turns the effective rate into response time.
//   - NoML — the ablation: the queue simulator driven by the raw marginal
//     sprint rate, no machine learning.
//   - ANN — the direct-mapping baseline: a deep MLP from inputs straight
//     to response time.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"mdsprint/internal/ann"
	"mdsprint/internal/calib"
	"mdsprint/internal/dist"
	"mdsprint/internal/fault"
	"mdsprint/internal/forest"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sweep"
	"mdsprint/internal/tier"
)

// Scenario is one prediction request: a sprinting policy plus workload
// conditions, expressed in the profiler's vocabulary.
type Scenario struct {
	Cond profiler.Condition
	// ArrivalRate in queries/second. Zero derives it from
	// Cond.Utilization and the dataset's measured service rate.
	ArrivalRate float64
}

// arrivalRate resolves the scenario's arrival rate against a dataset.
func (s Scenario) arrivalRate(ds *profiler.Dataset) float64 {
	if s.ArrivalRate > 0 {
		return s.ArrivalRate
	}
	return s.Cond.Utilization * ds.ServiceRate
}

// Prediction is a model's expected response-time answer.
type Prediction struct {
	MeanRT float64
	// P95RT and P99RT are populated by simulator-backed models (NaN
	// for the direct-mapping ANN).
	P95RT float64
	P99RT float64
	// SprintRate is the rate the simulator used (mu_e for Hybrid,
	// mu_m for NoML, 0 for ANN).
	SprintRate float64
}

// Model predicts response time for scenarios against a profiled dataset.
type Model interface {
	Name() string
	Predict(ds *profiler.Dataset, sc Scenario) (Prediction, error)
}

// CtxModel is a Model whose predictions honor a context — both for
// cancellation and for span tracing (the prediction's spans nest under
// the context's span). Simulator-backed models implement it.
type CtxModel interface {
	Model
	PredictCtx(ctx context.Context, ds *profiler.Dataset, sc Scenario) (Prediction, error)
}

// FeatureNames lists the predictive features shared by the forest and the
// ANN, in order. They are the paper's Figure 5 columns (lambda, mu, mu_m,
// budget, refill, timeout) plus normalised derivatives that help the
// learners generalise across workloads.
func FeatureNames() []string {
	return []string{
		"lambda_qps",
		"utilization",
		"mu_qps",
		"mum_qps",
		"marginal_speedup",
		"timeout_s",
		"timeout_services",
		"refill_s",
		"budget_pct",
		"budget_s",
		"arrival_pareto",
	}
}

// Features encodes a scenario against its dataset.
func Features(ds *profiler.Dataset, sc Scenario) []float64 {
	lambda := sc.arrivalRate(ds)
	mu := ds.ServiceRate
	mum := conditionMarginal(ds, sc.Cond)
	pareto := 0.0
	if sc.Cond.ArrivalKind == dist.KindPareto {
		pareto = 1
	}
	return []float64{
		lambda,
		lambda / mu,
		mu,
		mum,
		mum / mu,
		sc.Cond.Timeout,
		sc.Cond.Timeout * mu,
		sc.Cond.RefillTime,
		sc.Cond.BudgetPct,
		sc.Cond.BudgetPct * sc.Cond.RefillTime,
		pareto,
	}
}

// conditionMarginal mirrors calib's commanded-speedup clipping.
func conditionMarginal(ds *profiler.Dataset, cond profiler.Condition) float64 {
	mum := ds.MarginalRate
	if cond.Speedup > 0 {
		if cap := cond.Speedup * ds.ServiceRate; cap < mum {
			mum = cap
		}
	}
	return mum
}

// TrainingSet couples a profiled dataset with the observations used for
// training (typically the 80% split of its conditions).
type TrainingSet struct {
	Dataset      *profiler.Dataset
	Observations []profiler.Observation
}

// modelClock stamps prediction durations for modelMetrics. It is the
// injectable wall clock the determinism contract requires (see
// obs.Clock): swap in an obs.ManualClock under test to make measured
// regions reproducible. Prediction *results* never read it.
var modelClock = obs.ClockOr(nil)

// modelMetrics count model predictions in the default registry.
var modelMetrics = struct {
	predictions *obs.Counter
	seconds     *obs.Histogram
}{
	predictions: obs.Default().Counter("mdsprint_model_predictions_total", "simulator-backed model predictions served"),
	seconds:     obs.Default().Histogram("mdsprint_model_predict_seconds", "wall-clock seconds per model prediction", 0),
}

// simTask builds one sweep-engine task for a scenario at the given
// sprint rate, forwarding lifecycle events to tracer when non-nil (a
// tracer makes the task bypass the engine's memoization, so observed
// predictions always execute).
func simTask(ds *profiler.Dataset, sc Scenario, rate float64, queries, reps int, seed uint64, tracer obs.QueryTracer) (sweep.Task, error) {
	if len(ds.ServiceSamples) == 0 {
		return sweep.Task{}, fmt.Errorf("core: dataset %s/%s has no service samples", ds.MixName, ds.MechName)
	}
	return sweep.Task{
		Params: queuesim.Params{
			ArrivalRate:   sc.arrivalRate(ds),
			ArrivalKind:   sc.Cond.ArrivalKind,
			Service:       dist.NewEmpirical(ds.ServiceSamples),
			ServiceRate:   ds.ServiceRate,
			SprintRate:    rate,
			Timeout:       sc.Cond.Timeout,
			BudgetSeconds: sc.Cond.Policy().BudgetSeconds,
			RefillTime:    sc.Cond.RefillTime,
			NumQueries:    queries,
			Warmup:        queries / 10,
			Seed:          seed,
			Tracer:        tracer,
		},
		Reps: reps,
	}, nil
}

// toPrediction converts the simulator's pooled prediction.
func toPrediction(p queuesim.Prediction, rate float64) Prediction {
	return Prediction{
		MeanRT:     p.MeanRT,
		P95RT:      p.P95RT,
		P99RT:      p.P99RT,
		SprintRate: rate,
	}
}

// simulate evaluates one scenario through the sweep engine — or, when
// est is non-nil, through the staged tier estimator, which serves the
// cheapest tier whose error bound suffices and annotates the span with
// the tier that answered. The prediction is one "core.predict" span
// (nested under the context's span, or a root on the active tracer)
// with the sweep evaluation as its child.
func simulate(ctx context.Context, e *sweep.Engine, est *tier.Estimator, ds *profiler.Dataset, sc Scenario, rate float64, queries, reps int, seed uint64, tracer obs.QueryTracer) (Prediction, error) {
	t, err := simTask(ds, sc, rate, queries, reps, seed, tracer)
	if err != nil {
		return Prediction{}, err
	}
	sp := obs.StartSpanCtx(ctx, "core.predict")
	sp.SetFloat("sprint_rate", rate)
	sp.SetFloat("timeout_s", sc.Cond.Timeout)
	start := modelClock.Now()
	var pred queuesim.Prediction
	if est != nil {
		var dec tier.Decision
		pred, dec, err = est.Estimate(t)
		sp.SetString("tier", dec.Tier.String())
		sp.SetFloat("tier_err_estimate", dec.ErrEstimate)
	} else {
		pred, err = sweep.Or(e).EvaluateSpan(sp, t)
	}
	sp.SetError(err)
	sp.End()
	if err != nil {
		return Prediction{}, err
	}
	modelMetrics.predictions.Inc()
	modelMetrics.seconds.Observe(modelClock.Now().Sub(start).Seconds())
	return toPrediction(pred, rate), nil
}

// simulateAll evaluates a batch of scenarios at per-scenario sprint
// rates, sharded across the engine's workers with results in scenario
// order — or through the tier estimator's batched three-pass path when
// est is non-nil. The batch is one "core.predict_batch" span with the
// sweep batch (and its per-task cache annotations) nested under it; the
// tiered path annotates how many answers the cheap tiers absorbed.
func simulateAll(ctx context.Context, e *sweep.Engine, est *tier.Estimator, ds *profiler.Dataset, scs []Scenario, rates []float64, queries, reps int, seed uint64, tracer obs.QueryTracer) ([]Prediction, error) {
	tasks := make([]sweep.Task, len(scs))
	for i, sc := range scs {
		t, err := simTask(ds, sc, rates[i], queries, reps, seed, tracer)
		if err != nil {
			return nil, err
		}
		tasks[i] = t
	}
	sp := obs.StartSpanCtx(ctx, "core.predict_batch")
	sp.SetInt("scenarios", int64(len(scs)))
	start := modelClock.Now()
	var preds []queuesim.Prediction
	var err error
	if est != nil {
		var decs []tier.Decision
		preds, decs, err = est.EstimateAll(tasks)
		cheap := int64(0)
		for _, d := range decs {
			if d.Tier == tier.TierAnalytic || d.Tier == tier.TierCache {
				cheap++
			}
		}
		sp.SetInt("tier_cheap", cheap)
	} else {
		preds, err = sweep.Or(e).EvaluateAllCtx(obs.ContextWithSpan(ctx, sp), tasks)
	}
	sp.SetError(err)
	sp.End()
	if err != nil {
		return nil, err
	}
	modelMetrics.predictions.Add(float64(len(scs)))
	modelMetrics.seconds.Observe(modelClock.Now().Sub(start).Seconds())
	out := make([]Prediction, len(preds))
	for i, p := range preds {
		out[i] = toPrediction(p, rates[i])
	}
	return out, nil
}

// engineFor resolves a model's evaluation engine: an explicit engine
// wins; a legacy Workers hint gets a dedicated pool of that size;
// otherwise the process-shared engine serves.
func engineFor(e *sweep.Engine, workers int) *sweep.Engine {
	if e != nil {
		return e
	}
	if workers > 0 {
		return sweep.New(sweep.Options{Workers: workers})
	}
	return sweep.Shared()
}

// Evaluation compares a model's predictions to held-out observations.
type Evaluation struct {
	Predicted []float64
	Observed  []float64
	Errors    []float64
}

// BatchModel is a Model that can score many scenarios in one call —
// simulator-backed models implement it by handing the batch to the sweep
// engine, which shards the evaluations and memoizes repeats.
type BatchModel interface {
	Model
	PredictAll(ds *profiler.Dataset, scs []Scenario) ([]Prediction, error)
}

// BatchCtxModel is a BatchModel whose batch predictions honor a context
// (cancellation and span tracing).
type BatchCtxModel interface {
	BatchModel
	PredictAllCtx(ctx context.Context, ds *profiler.Dataset, scs []Scenario) ([]Prediction, error)
}

// Evaluate predicts every observation's condition and collects absolute
// relative errors, the metric of Figures 7-10. Models implementing
// BatchModel are scored as one sweep; others fall back to serial
// Predict calls (the two paths are bit-identical — see the sweep
// engine's determinism contract).
func Evaluate(m Model, ds *profiler.Dataset, obs []profiler.Observation) (Evaluation, error) {
	return EvaluateCtx(context.Background(), m, ds, obs)
}

// EvaluateCtx is Evaluate honoring cancellation and span tracing: the
// whole evaluation is one "core.evaluate" span, and context-aware
// models nest their prediction spans under it.
func EvaluateCtx(ctx context.Context, m Model, ds *profiler.Dataset, observations []profiler.Observation) (Evaluation, error) {
	sp := obs.StartSpanCtx(ctx, "core.evaluate")
	sp.SetString("model", m.Name())
	sp.SetInt("observations", int64(len(observations)))
	ctx = obs.ContextWithSpan(ctx, sp)
	ev, err := evaluate(ctx, m, ds, observations)
	sp.SetError(err)
	sp.End()
	return ev, err
}

// evaluate is EvaluateCtx's body.
func evaluate(ctx context.Context, m Model, ds *profiler.Dataset, obs []profiler.Observation) (Evaluation, error) {
	ev := Evaluation{
		Predicted: make([]float64, 0, len(obs)),
		Observed:  make([]float64, 0, len(obs)),
		Errors:    make([]float64, 0, len(obs)),
	}
	preds := make([]Prediction, 0, len(obs))
	if bm, ok := m.(BatchModel); ok {
		scs := make([]Scenario, len(obs))
		for i, o := range obs {
			scs[i] = Scenario{Cond: o.Cond, ArrivalRate: o.ArrivalRate}
		}
		var batch []Prediction
		var err error
		if bcm, ok := bm.(BatchCtxModel); ok {
			batch, err = bcm.PredictAllCtx(ctx, ds, scs)
		} else {
			batch, err = bm.PredictAll(ds, scs)
		}
		if err != nil {
			return Evaluation{}, fmt.Errorf("core: evaluating batch: %w", err)
		}
		preds = batch
	} else {
		for _, o := range obs {
			var pred Prediction
			var err error
			if cm, ok := m.(CtxModel); ok {
				pred, err = cm.PredictCtx(ctx, ds, Scenario{Cond: o.Cond, ArrivalRate: o.ArrivalRate})
			} else {
				pred, err = m.Predict(ds, Scenario{Cond: o.Cond, ArrivalRate: o.ArrivalRate})
			}
			if err != nil {
				return Evaluation{}, fmt.Errorf("core: evaluating %s: %w", o.Cond, err)
			}
			preds = append(preds, pred)
		}
	}
	for i, o := range obs {
		ev.Predicted = append(ev.Predicted, preds[i].MeanRT)
		ev.Observed = append(ev.Observed, o.MeanRT)
		ev.Errors = append(ev.Errors, math.Abs(preds[i].MeanRT-o.MeanRT)/o.MeanRT)
	}
	return ev, nil
}

// annFeaturesAndTargets flattens training sets into the ANN's direct
// input-to-response-time form.
func annFeaturesAndTargets(sets []TrainingSet) ([][]float64, []float64) {
	var X [][]float64
	var Y []float64
	for _, set := range sets {
		for _, o := range set.Observations {
			X = append(X, Features(set.Dataset, Scenario{Cond: o.Cond, ArrivalRate: o.ArrivalRate}))
			Y = append(Y, o.MeanRT)
		}
	}
	return X, Y
}

// ANN is the direct-mapping baseline model.
type ANN struct {
	net *ann.Network
}

// TrainANN fits the Table 1(A) baseline on the training sets.
func TrainANN(sets []TrainingSet, cfg ann.Config) (*ANN, error) {
	X, Y := annFeaturesAndTargets(sets)
	if len(X) == 0 {
		return nil, fmt.Errorf("core: no ANN training observations")
	}
	net, err := ann.Train(X, Y, cfg)
	if err != nil {
		return nil, err
	}
	return &ANN{net: net}, nil
}

func (a *ANN) Name() string { return "ANN" }

// Predict maps the scenario's features straight to mean response time.
func (a *ANN) Predict(ds *profiler.Dataset, sc Scenario) (Prediction, error) {
	rt := a.net.Predict(Features(ds, sc))
	if rt < 0 {
		rt = 0
	}
	return Prediction{MeanRT: rt, P95RT: math.NaN(), P99RT: math.NaN()}, nil
}

// NoML is the simulator-only ablation: marginal sprint rate in, response
// time out, no learning.
type NoML struct {
	// SimQueries and SimReps size each prediction (defaults 4000/2).
	SimQueries int
	SimReps    int
	// Workers sizes a dedicated evaluation pool when Engine is nil;
	// zero shares the process-wide sweep engine.
	Workers int
	Seed    uint64
	// Engine evaluates (and memoizes) the prediction simulations; nil
	// resolves per Workers above.
	Engine *sweep.Engine
	// Tiers, when non-nil, answers predictions with the cheapest
	// sufficient tier (analytic closed form, sweep-cache hit, short
	// replications) instead of always simulating; it supersedes Engine
	// for answering, using its own engine for the simulation tiers.
	Tiers *tier.Estimator
	// Tracer forwards the prediction simulations' lifecycle events
	// (and disables memoization for them).
	Tracer obs.QueryTracer

	engineOnce sync.Once
	engine     *sweep.Engine
}

func (n *NoML) Name() string { return "No-ML" }

func (n *NoML) resolveEngine() *sweep.Engine {
	n.engineOnce.Do(func() { n.engine = engineFor(n.Engine, n.Workers) })
	return n.engine
}

func (n *NoML) simSizes() (queries, reps int) {
	queries, reps = n.SimQueries, n.SimReps
	if queries == 0 {
		queries = 4000
	}
	if reps == 0 {
		reps = 2
	}
	return queries, reps
}

func (n *NoML) Predict(ds *profiler.Dataset, sc Scenario) (Prediction, error) {
	return n.PredictCtx(context.Background(), ds, sc)
}

// PredictCtx is Predict honoring cancellation and span tracing.
func (n *NoML) PredictCtx(ctx context.Context, ds *profiler.Dataset, sc Scenario) (Prediction, error) {
	queries, reps := n.simSizes()
	return simulate(ctx, n.resolveEngine(), n.Tiers, ds, sc, conditionMarginal(ds, sc.Cond), queries, reps, n.Seed, n.Tracer)
}

// PredictAll scores a batch of scenarios as one sweep.
func (n *NoML) PredictAll(ds *profiler.Dataset, scs []Scenario) ([]Prediction, error) {
	return n.PredictAllCtx(context.Background(), ds, scs)
}

// PredictAllCtx is PredictAll honoring cancellation and span tracing.
func (n *NoML) PredictAllCtx(ctx context.Context, ds *profiler.Dataset, scs []Scenario) ([]Prediction, error) {
	queries, reps := n.simSizes()
	rates := make([]float64, len(scs))
	for i, sc := range scs {
		rates[i] = conditionMarginal(ds, sc.Cond)
	}
	return simulateAll(ctx, n.resolveEngine(), n.Tiers, ds, scs, rates, queries, reps, n.Seed, n.Tracer)
}

// ensure interface conformance.
var (
	_ Model      = (*ANN)(nil)
	_ BatchModel = (*NoML)(nil)
	_ BatchModel = (*Hybrid)(nil)
)

// Hybrid is the paper's model. See package documentation.
type Hybrid struct {
	forest *forest.Forest
	// records retains the calibrated training rows for inspection.
	records []calib.Record

	simQueries int
	simReps    int
	seed       uint64
	engine     *sweep.Engine
	tiers      *tier.Estimator
	tracer     obs.QueryTracer
}

// HybridOptions tunes hybrid training and prediction.
type HybridOptions struct {
	Forest forest.Config
	Calib  calib.Options
	// SimQueries and SimReps size each prediction (defaults 4000/2).
	SimQueries int
	SimReps    int
	// Workers sizes a dedicated evaluation pool when Engine is nil;
	// zero shares the process-wide sweep engine.
	Workers int
	Seed    uint64
	// Engine evaluates (and memoizes) prediction simulations; it is
	// also threaded into Calib when Calib.Engine is unset, so training
	// and prediction share one memoization pool.
	Engine *sweep.Engine
	// Metrics receives calibration progress (threaded into Calib when
	// Calib.Metrics is unset); Tracer receives prediction lifecycle
	// events. Both may be nil.
	Metrics *obs.Registry
	Tracer  obs.QueryTracer
	// Breaker circuit-breaks the calibration searches (threaded into
	// Calib when Calib.Breaker is unset): consecutive divergent mu_e
	// fits trip it and later records degrade to mu_m instead of burning
	// simulator time on a misbehaving profile. May be nil.
	Breaker *fault.Breaker
	// Tiers, when non-nil, answers the trained model's predictions with
	// the cheapest sufficient tier instead of always simulating (see
	// NoML.Tiers). Training/calibration is unaffected.
	Tiers *tier.Estimator
}

// TrainHybrid calibrates effective sprint rates for every training
// observation and fits the random decision forest on them.
func TrainHybrid(sets []TrainingSet, o HybridOptions) (*Hybrid, error) {
	return TrainHybridCtx(context.Background(), sets, o)
}

// TrainHybridCtx is TrainHybrid honoring cancellation and span tracing:
// training is one "core.train_hybrid" span with each dataset's
// calibration (and its per-record searches) and the forest fit nested
// under it.
func TrainHybridCtx(ctx context.Context, sets []TrainingSet, o HybridOptions) (h *Hybrid, err error) {
	sp := obs.StartSpanCtx(ctx, "core.train_hybrid")
	sp.SetInt("training_sets", int64(len(sets)))
	ctx = obs.ContextWithSpan(ctx, sp)
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: no training sets")
	}
	copts := o.Calib
	if copts.Metrics == nil {
		copts.Metrics = o.Metrics
	}
	if copts.Engine == nil {
		copts.Engine = o.Engine
	}
	if copts.Breaker == nil {
		copts.Breaker = o.Breaker
	}
	var samples []forest.Sample
	var records []calib.Record
	for _, set := range sets {
		recs, err := calib.CalibrateDatasetCtx(ctx, set.Dataset, set.Observations, copts)
		if err != nil {
			return nil, err
		}
		for i, rec := range recs {
			obs := set.Observations[i]
			samples = append(samples, forest.Sample{
				Features: Features(set.Dataset, Scenario{Cond: obs.Cond, ArrivalRate: obs.ArrivalRate}),
				X:        rec.MarginalRate,
				Y:        rec.EffectiveRate,
			})
		}
		records = append(records, recs...)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no training observations")
	}
	fcfg := o.Forest
	if fcfg.Seed == 0 {
		fcfg.Seed = o.Seed + 1
	}
	fsp := sp.StartChild("forest.train")
	fsp.SetInt("samples", int64(len(samples)))
	f, err := forest.Train(samples, FeatureNames(), fcfg)
	fsp.SetError(err)
	fsp.End()
	if err != nil {
		return nil, err
	}
	h = &Hybrid{
		forest:     f,
		records:    records,
		simQueries: o.SimQueries,
		simReps:    o.SimReps,
		seed:       o.Seed,
		engine:     engineFor(o.Engine, o.Workers),
		tiers:      o.Tiers,
		tracer:     o.Tracer,
	}
	if h.simQueries == 0 {
		h.simQueries = 4000
	}
	if h.simReps == 0 {
		h.simReps = 2
	}
	return h, nil
}

// NewHybridFromForest assembles a hybrid model around a pre-trained
// forest — the ablation path for comparing forest configurations end to
// end without re-running calibration.
func NewHybridFromForest(f *forest.Forest, simQueries, simReps, workers int, seed uint64) *Hybrid {
	if simQueries == 0 {
		simQueries = 4000
	}
	if simReps == 0 {
		simReps = 2
	}
	return &Hybrid{forest: f, simQueries: simQueries, simReps: simReps, seed: seed, engine: engineFor(nil, workers)}
}

func (h *Hybrid) Name() string { return "Hybrid" }

// EffectiveRate returns the forest's mu_e estimate for a scenario,
// clamped to the physically sensible band [0.5*mu, 3*mu_m]. The band
// extends below the service rate because congested toggling can make
// sprints net-negative (Section 2.3's runtime factors).
func (h *Hybrid) EffectiveRate(ds *profiler.Dataset, sc Scenario) float64 {
	mum := conditionMarginal(ds, sc.Cond)
	rate := h.forest.Predict(Features(ds, sc), mum)
	if min := 0.5 * ds.ServiceRate; rate < min {
		rate = min
	}
	if max := 3 * mum; rate > max {
		rate = max
	}
	return rate
}

// Predict runs the Figure 2 pipeline: features -> forest -> effective
// sprint rate -> timeout-aware queue simulation -> response time.
func (h *Hybrid) Predict(ds *profiler.Dataset, sc Scenario) (Prediction, error) {
	return h.PredictCtx(context.Background(), ds, sc)
}

// PredictCtx is Predict honoring cancellation and span tracing.
func (h *Hybrid) PredictCtx(ctx context.Context, ds *profiler.Dataset, sc Scenario) (Prediction, error) {
	return simulate(ctx, h.engine, h.tiers, ds, sc, h.EffectiveRate(ds, sc), h.simQueries, h.simReps, h.seed, h.tracer)
}

// PredictAll runs the pipeline for a batch of scenarios as one sweep:
// the forest prices every scenario's effective rate up front, then the
// engine shards (and memoizes) the queue simulations.
func (h *Hybrid) PredictAll(ds *profiler.Dataset, scs []Scenario) ([]Prediction, error) {
	return h.PredictAllCtx(context.Background(), ds, scs)
}

// PredictAllCtx is PredictAll honoring cancellation and span tracing.
func (h *Hybrid) PredictAllCtx(ctx context.Context, ds *profiler.Dataset, scs []Scenario) ([]Prediction, error) {
	rates := make([]float64, len(scs))
	for i, sc := range scs {
		rates[i] = h.EffectiveRate(ds, sc)
	}
	return simulateAll(ctx, h.engine, h.tiers, ds, scs, rates, h.simQueries, h.simReps, h.seed, h.tracer)
}

// Records exposes the calibrated training rows (for diagnostics and the
// experiment harness).
func (h *Hybrid) Records() []calib.Record { return h.records }

// Importances exposes the forest's feature importances.
func (h *Hybrid) Importances() []forest.Importance { return h.forest.Importances() }
