// Package forest implements the paper's random decision forest regressor
// (Section 2.4, Figure 5): bagged, deep, unpruned binary regression trees
// built with ID3-style variance-reduction splits (Equation 3), each tree
// over a random subset of the predictive features, with linear-regression
// leaves of the form mu_e = a * mu_m + b. The forest's prediction averages
// the regression parameters voted by each tree, exactly as Figure 5's
// worked example shows.
//
// The implementation is generic over float feature vectors so tests can
// exercise it on synthetic functions; internal/core maps profiled
// conditions into features.
package forest

import (
	"fmt"
	"math"
	"sort"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/stats"
)

// treesTrained counts per-tree training progress in the default registry,
// so a long TrainHybrid shows forest construction advancing live.
var treesTrained = obs.Default().Counter("mdsprint_forest_trees_trained_total", "regression trees trained across all forests")

// Sample is one training row: predictive features, the leaf-regression
// abscissa x (the marginal sprint rate), and the target y (the effective
// sprint rate).
type Sample struct {
	Features []float64
	X        float64
	Y        float64
}

// Config tunes forest construction.
type Config struct {
	// Trees is the ensemble size; the paper uses 10 (Table 1A).
	Trees int
	// MinLeaf is the minimum samples per leaf (default 3).
	MinLeaf int
	// MaxDepth caps tree depth; 0 means unlimited. The paper grows
	// deep trees and eschews pruning, so the default is unlimited.
	MaxDepth int
	// FeatureFrac is the fraction of features each tree may split on
	// (default 0.7, at least 1 feature).
	FeatureFrac float64
	// MeanLeaves replaces the Figure 5 linear-regression leaves
	// (y = a*x + b) with constant-mean leaves — the ablation knob for
	// the paper's leaf-model choice.
	MeanLeaves bool
	// Seed drives bootstrap and feature subsampling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Trees == 0 {
		c.Trees = 10
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 3
	}
	if c.FeatureFrac <= 0 {
		c.FeatureFrac = 0.7
	}
	return c
}

// node is one tree node: either an internal split or a leaf fit.
type node struct {
	// Internal nodes.
	feature   int
	threshold float64
	left      *node
	right     *node
	// Leaves.
	leaf bool
	fit  stats.LinearFit
}

type tree struct {
	root     *node
	features []int // the subset this tree may split on
}

// Forest is a trained random decision forest.
type Forest struct {
	trees    []*tree
	names    []string
	nFeature int
	// gains accumulates variance-reduction per feature for
	// Importances.
	gains []float64
}

// Train builds a forest from samples. names labels the feature columns
// (used in diagnostics and importances) and must match the feature width.
func Train(samples []Sample, names []string, cfg Config) (*Forest, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("forest: no training samples")
	}
	width := len(samples[0].Features)
	if width == 0 {
		return nil, fmt.Errorf("forest: samples have no features")
	}
	if len(names) != width {
		return nil, fmt.Errorf("forest: %d names for %d features", len(names), width)
	}
	for i, s := range samples {
		if len(s.Features) != width {
			return nil, fmt.Errorf("forest: sample %d has %d features, want %d", i, len(s.Features), width)
		}
		if math.IsNaN(s.X) || math.IsNaN(s.Y) {
			return nil, fmt.Errorf("forest: sample %d has NaN values", i)
		}
	}
	c := cfg.withDefaults()
	f := &Forest{
		trees:    make([]*tree, 0, c.Trees),
		names:    append([]string(nil), names...),
		nFeature: width,
		gains:    make([]float64, width),
	}
	rng := dist.NewRNG(c.Seed)
	nSub := int(math.Ceil(c.FeatureFrac * float64(width)))
	if nSub < 1 {
		nSub = 1
	}
	if nSub > width {
		nSub = width
	}
	for ti := 0; ti < c.Trees; ti++ {
		// Bootstrap sample (with replacement).
		boot := make([]*Sample, len(samples))
		for i := range boot {
			boot[i] = &samples[rng.Intn(len(samples))]
		}
		// Random feature subset.
		perm := rng.Perm(width)
		feats := append([]int(nil), perm[:nSub]...)
		sort.Ints(feats)
		tr := &tree{features: feats}
		tr.root = f.grow(boot, feats, c, 0)
		f.trees = append(f.trees, tr)
		treesTrained.Inc()
	}
	return f, nil
}

// variance returns the population variance of the targets.
func variance(samples []*Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	mean := 0.0
	for _, s := range samples {
		mean += s.Y
	}
	mean /= float64(len(samples))
	v := 0.0
	for _, s := range samples {
		d := s.Y - mean
		v += d * d
	}
	return v / float64(len(samples))
}

// grow recursively builds a (sub)tree. Trees are grown deep and unpruned;
// growth stops only when a node is too small, pure, un-splittable, or at
// the configured depth cap.
func (f *Forest) grow(samples []*Sample, feats []int, c Config, depth int) *node {
	if len(samples) < 2*c.MinLeaf || variance(samples) < 1e-18 ||
		(c.MaxDepth > 0 && depth >= c.MaxDepth) {
		return f.makeLeaf(samples, c)
	}
	bestGain := 0.0
	bestFeat := -1
	bestThr := 0.0
	parentVar := variance(samples)
	for _, fi := range feats {
		thr, gain := bestSplit(samples, fi, c.MinLeaf, parentVar)
		if gain > bestGain {
			bestGain, bestFeat, bestThr = gain, fi, thr
		}
	}
	if bestFeat < 0 {
		return f.makeLeaf(samples, c)
	}
	f.gains[bestFeat] += bestGain * float64(len(samples))
	var left, right []*Sample
	for _, s := range samples {
		if s.Features[bestFeat] <= bestThr {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThr,
		left:      f.grow(left, feats, c, depth+1),
		right:     f.grow(right, feats, c, depth+1),
	}
}

// bestSplit scans thresholds for one feature and returns the split with
// the largest variance gain (Equation 3's variance-reduction criterion,
// with the child terms weighted by subset size). Candidate thresholds are
// midpoints between consecutive distinct feature values.
func bestSplit(samples []*Sample, fi, minLeaf int, parentVar float64) (thr, gain float64) {
	sorted := append([]*Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Features[fi] < sorted[j].Features[fi] })
	n := len(sorted)
	// Prefix sums for O(1) variance of each side.
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, s := range sorted {
		prefix[i+1] = prefix[i] + s.Y
		prefixSq[i+1] = prefixSq[i] + s.Y*s.Y
	}
	sideVar := func(lo, hi int) float64 { // variance of sorted[lo:hi]
		if hi == lo {
			return 0
		}
		cnt := float64(hi - lo)
		sum := prefix[hi] - prefix[lo]
		sq := prefixSq[hi] - prefixSq[lo]
		return sq/cnt - (sum/cnt)*(sum/cnt)
	}
	bestGain := 0.0
	bestThr := 0.0
	for i := minLeaf; i <= n-minLeaf; i++ {
		//lint:ignore floateq sorted-neighbour dedup: only bitwise-identical values share a bin, so exact equality is the boundary test
		if sorted[i-1].Features[fi] == sorted[i].Features[fi] {
			continue // not a boundary between distinct values
		}
		wl := float64(i) / float64(n)
		wr := 1 - wl
		g := parentVar - (wl*sideVar(0, i) + wr*sideVar(i, n))
		if g > bestGain {
			bestGain = g
			bestThr = (sorted[i-1].Features[fi] + sorted[i].Features[fi]) / 2
		}
	}
	return bestThr, bestGain
}

// makeLeaf fits the leaf's linear regression of y on x (Figure 5's
// mu_e = a*mu_m + b leaves), or a constant mean under the MeanLeaves
// ablation.
func (f *Forest) makeLeaf(samples []*Sample, c Config) *node {
	if len(samples) == 0 {
		// Can happen only on degenerate splits; predict a neutral fit.
		return &node{leaf: true, fit: stats.LinearFit{A: 1, B: 0}}
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.X
		ys[i] = s.Y
	}
	if c.MeanLeaves {
		return &node{leaf: true, fit: stats.LinearFit{A: 0, B: stats.Mean(ys), N: len(ys)}}
	}
	return &node{leaf: true, fit: stats.FitLinear(xs, ys)}
}

// lookup walks one tree to its leaf fit for the given features.
func (t *tree) lookup(features []float64) stats.LinearFit {
	n := t.root
	for !n.leaf {
		if features[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.fit
}

// PredictParams returns the ensemble's averaged leaf-regression parameters
// (a, b) for the given features: the "votes" row of Figure 5.
func (f *Forest) PredictParams(features []float64) (a, b float64) {
	if len(features) != f.nFeature {
		panic(fmt.Sprintf("forest: %d features, trained on %d", len(features), f.nFeature))
	}
	for _, t := range f.trees {
		fit := t.lookup(features)
		a += fit.A
		b += fit.B
	}
	n := float64(len(f.trees))
	return a / n, b / n
}

// Predict returns the forest's estimate of y at (features, x):
// mean(a)*x + mean(b).
func (f *Forest) Predict(features []float64, x float64) float64 {
	a, b := f.PredictParams(features)
	return a*x + b
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Importance is one feature's share of total variance reduction.
type Importance struct {
	Name  string
	Share float64
}

// Importances ranks features by their accumulated split gain.
func (f *Forest) Importances() []Importance {
	total := 0.0
	for _, g := range f.gains {
		total += g
	}
	out := make([]Importance, len(f.names))
	for i, name := range f.names {
		share := 0.0
		if total > 0 {
			share = f.gains[i] / total
		}
		out[i] = Importance{Name: name, Share: share}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Share > out[j].Share })
	return out
}
