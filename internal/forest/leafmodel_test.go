package forest

import (
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/stats"
)

// TestForestLeafModelAblation compares Figure 5's linear-regression leaves
// against constant-mean leaves on data where the target is linear in x
// within feature regions — the cross-workload structure mu_e ~= a*mu_m + b
// that motivated the paper's leaf choice. Linear leaves must generalise
// better.
func TestForestLeafModelAblation(t *testing.T) {
	// Two regimes selected by f0; within each, y is linear in x with a
	// different slope; x spans a wide range (as mu_m does across
	// workloads).
	f := func(fs []float64, x float64) float64 {
		if fs[0] < 5 {
			return 1.4*x + 2
		}
		return 0.7*x + 1
	}
	gen := func(n int, seed uint64) []Sample {
		r := dist.NewRNG(seed)
		out := make([]Sample, n)
		for i := range out {
			fs := []float64{r.Float64() * 10, r.Float64() * 5, r.Float64()}
			x := 5 + r.Float64()*45
			out[i] = Sample{Features: fs, X: x, Y: f(fs, x) + 0.2*r.NormFloat64()}
		}
		return out
	}
	train := gen(300, 1)
	test := gen(200, 2)
	evalCfg := func(cfg Config) float64 {
		fo, err := Train(train, names3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var preds, wants []float64
		for _, s := range test {
			preds = append(preds, fo.Predict(s.Features, s.X))
			wants = append(wants, f(s.Features, s.X))
		}
		return stats.MedianAbsRelError(preds, wants)
	}
	linear := evalCfg(Config{Seed: 3})
	mean := evalCfg(Config{Seed: 3, MeanLeaves: true})
	if linear >= mean {
		t.Fatalf("linear leaves (%.4f) should beat mean leaves (%.4f) on linear-in-x targets", linear, mean)
	}
	// Linear leaves should be dramatically better here, not marginal.
	if mean/linear < 2 {
		t.Fatalf("expected a clear gap: linear %.4f vs mean %.4f", linear, mean)
	}
}

// TestMeanLeavesStillWork: the ablation configuration must remain a sound
// regressor on targets without x-structure.
func TestMeanLeavesStillWork(t *testing.T) {
	f := func(fs []float64) float64 {
		if fs[1] > 2.5 {
			return 30
		}
		return 12
	}
	r := dist.NewRNG(7)
	train := make([]Sample, 400)
	for i := range train {
		fs := []float64{r.Float64() * 10, r.Float64() * 5, r.Float64()}
		train[i] = Sample{Features: fs, X: r.Float64(), Y: f(fs) + 0.1*r.NormFloat64()}
	}
	fo, err := Train(train, names3, Config{Seed: 8, MeanLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct {
		fs   []float64
		want float64
	}{
		{[]float64{5, 4, 0.5}, 30},
		{[]float64{5, 1, 0.5}, 12},
	} {
		got := fo.Predict(probe.fs, 0.5)
		if e := stats.AbsRelError(got, probe.want); e > 0.08 {
			t.Fatalf("mean-leaf forest predicted %v for %v, want %v", got, probe.fs, probe.want)
		}
	}
}
