package forest

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/stats"
)

// synthSamples generates y = f(features)*x + g(features) + noise data.
func synthSamples(n int, seed uint64, f func(fs []float64, x float64) float64, noise float64) []Sample {
	r := dist.NewRNG(seed)
	out := make([]Sample, n)
	for i := range out {
		fs := []float64{r.Float64() * 10, r.Float64() * 5, r.Float64()}
		x := 1 + r.Float64()*4
		out[i] = Sample{
			Features: fs,
			X:        x,
			Y:        f(fs, x) + noise*r.NormFloat64(),
		}
	}
	return out
}

var names3 = []string{"f0", "f1", "f2"}

func TestTrainValidation(t *testing.T) {
	cases := map[string]struct {
		samples []Sample
		names   []string
	}{
		"empty":         {nil, names3},
		"no features":   {[]Sample{{Features: nil, X: 1, Y: 1}}, nil},
		"name mismatch": {[]Sample{{Features: []float64{1}, X: 1, Y: 1}}, names3},
		"ragged": {[]Sample{
			{Features: []float64{1, 2, 3}, X: 1, Y: 1},
			{Features: []float64{1}, X: 1, Y: 1},
		}, names3},
		"nan": {[]Sample{{Features: []float64{1, 2, 3}, X: math.NaN(), Y: 1}}, names3},
	}
	for name, c := range cases {
		if _, err := Train(c.samples, c.names, Config{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLearnsPiecewiseConstant(t *testing.T) {
	// y depends on a threshold in f0 — the canonical tree shape.
	f := func(fs []float64, x float64) float64 {
		if fs[0] < 5 {
			return 10
		}
		return 20
	}
	train := synthSamples(400, 1, f, 0.1)
	forest, err := Train(train, names3, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	test := synthSamples(100, 3, f, 0)
	for _, s := range test {
		if math.Abs(s.Features[0]-5) < 0.3 {
			continue // threshold location is only learnable to data resolution
		}
		got := forest.Predict(s.Features, s.X)
		if math.Abs(got-s.Y) > 1.0 {
			t.Fatalf("features %v: predict %v, want %v", s.Features, got, s.Y)
		}
	}
}

func TestLearnsLinearInX(t *testing.T) {
	// y = a(f0)*x with a switching on f0: leaves must capture the
	// linear-in-x structure via their regression fits.
	f := func(fs []float64, x float64) float64 {
		if fs[0] < 5 {
			return 1.5 * x
		}
		return 0.8 * x
	}
	train := synthSamples(600, 5, f, 0.05)
	forest, err := Train(train, names3, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	test := synthSamples(150, 7, f, 0)
	var preds, wants []float64
	for _, s := range test {
		preds = append(preds, forest.Predict(s.Features, s.X))
		wants = append(wants, s.Y)
	}
	if med := stats.MedianAbsRelError(preds, wants); med > 0.05 {
		t.Fatalf("median error %v on linear-in-x target", med)
	}
}

func TestPredictParamsAveragesVotes(t *testing.T) {
	// A constant-slope target: every leaf's fit should be near (a=2,
	// b=1), and so should the averaged vote.
	f := func(fs []float64, x float64) float64 { return 2*x + 1 }
	train := synthSamples(300, 9, f, 0.02)
	forest, err := Train(train, names3, Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	a, b := forest.PredictParams([]float64{5, 2, 0.5})
	if math.Abs(a-2) > 0.2 || math.Abs(b-1) > 0.6 {
		t.Fatalf("averaged vote (a=%v, b=%v), want ~(2, 1)", a, b)
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := synthSamples(200, 11, func(fs []float64, x float64) float64 { return fs[0] + x }, 0.1)
	f1, _ := Train(train, names3, Config{Seed: 12})
	f2, _ := Train(train, names3, Config{Seed: 12})
	probe := []float64{3, 1, 0.2}
	if f1.Predict(probe, 2) != f2.Predict(probe, 2) {
		t.Fatal("training is not deterministic for a fixed seed")
	}
	f3, _ := Train(train, names3, Config{Seed: 13})
	if f1.Predict(probe, 2) == f3.Predict(probe, 2) {
		t.Fatal("different seeds produced identical forests (suspicious)")
	}
}

func TestNumTreesHonoursConfig(t *testing.T) {
	train := synthSamples(50, 14, func(fs []float64, x float64) float64 { return x }, 0.1)
	f, _ := Train(train, names3, Config{Trees: 25, Seed: 15})
	if f.NumTrees() != 25 {
		t.Fatalf("got %d trees, want 25", f.NumTrees())
	}
	fDefault, _ := Train(train, names3, Config{Seed: 15})
	if fDefault.NumTrees() != 10 {
		t.Fatalf("default trees %d, want the paper's 10", fDefault.NumTrees())
	}
}

func TestImportancesIdentifyActiveFeature(t *testing.T) {
	// Only f1 matters.
	f := func(fs []float64, x float64) float64 {
		if fs[1] > 2.5 {
			return 50
		}
		return 10
	}
	train := synthSamples(500, 16, f, 0.1)
	forest, _ := Train(train, names3, Config{Seed: 17, FeatureFrac: 1})
	imps := forest.Importances()
	if imps[0].Name != "f1" {
		t.Fatalf("top importance %v, want f1", imps[0])
	}
	if imps[0].Share < 0.8 {
		t.Fatalf("f1 share %v, want dominant", imps[0].Share)
	}
	total := 0.0
	for _, im := range imps {
		total += im.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importance shares sum to %v", total)
	}
}

func TestPredictPanicsOnWidthMismatch(t *testing.T) {
	train := synthSamples(50, 18, func(fs []float64, x float64) float64 { return x }, 0.1)
	f, _ := Train(train, names3, Config{Seed: 19})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on feature width mismatch")
		}
	}()
	f.Predict([]float64{1}, 2)
}

func TestMaxDepthLimitsTree(t *testing.T) {
	// With MaxDepth 1 the forest can make only one split per tree, so a
	// two-threshold target cannot be fit exactly — but it must still
	// run and produce finite output.
	f := func(fs []float64, x float64) float64 {
		v := 0.0
		if fs[0] > 3 {
			v += 10
		}
		if fs[1] > 2 {
			v += 5
		}
		return v
	}
	train := synthSamples(300, 20, f, 0.1)
	shallow, err := Train(train, names3, Config{Seed: 21, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	deep, _ := Train(train, names3, Config{Seed: 21})
	test := synthSamples(100, 22, f, 0)
	errOf := func(fo *Forest) float64 {
		var preds, wants []float64
		for _, s := range test {
			preds = append(preds, fo.Predict(s.Features, s.X))
			wants = append(wants, s.Y+1e-9)
		}
		return stats.MedianAbsRelError(preds, wants)
	}
	if errOf(deep) >= errOf(shallow) {
		t.Fatalf("deep trees (err %v) should beat depth-1 trees (err %v)", errOf(deep), errOf(shallow))
	}
}

func TestConstantTargetGivesConstantPrediction(t *testing.T) {
	train := make([]Sample, 40)
	r := dist.NewRNG(23)
	for i := range train {
		train[i] = Sample{Features: []float64{r.Float64(), r.Float64(), r.Float64()}, X: r.Float64() + 1, Y: 7}
	}
	f, err := Train(train, names3, Config{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{0.5, 0.5, 0.5}, 1.7); math.Abs(got-7) > 1e-6 {
		t.Fatalf("constant target predicted %v, want 7", got)
	}
}

func TestGeneralisationBeatsNoise(t *testing.T) {
	// A smoke test of regression quality on a smooth target: median
	// error should be well under the signal scale.
	f := func(fs []float64, x float64) float64 {
		return 5 + fs[0]*0.5 + fs[1]*fs[1]*0.1 + 0.3*x
	}
	train := synthSamples(800, 25, f, 0.05)
	forest, _ := Train(train, names3, Config{Seed: 26})
	test := synthSamples(200, 27, f, 0)
	var preds, wants []float64
	for _, s := range test {
		preds = append(preds, forest.Predict(s.Features, s.X))
		wants = append(wants, s.Y)
	}
	if med := stats.MedianAbsRelError(preds, wants); med > 0.04 {
		t.Fatalf("median error %v on smooth target", med)
	}
}
