package sweep

import (
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sprint"
)

func baseParams() queuesim.Params {
	return queuesim.Params{
		ArrivalRate:   0.01,
		ArrivalKind:   dist.KindExponential,
		Service:       dist.NewExponential(0.02),
		ServiceRate:   0.02,
		SprintRate:    0.05,
		Timeout:       60,
		BudgetSeconds: 100,
		RefillTime:    500,
		Refill:        sprint.RefillWindow,
		Slots:         1,
		NumQueries:    1000,
		Warmup:        100,
		Seed:          7,
	}
}

func mustKey(t *testing.T, p queuesim.Params, reps int) Key {
	t.Helper()
	k, err := Fingerprint(p, reps)
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	return k
}

// TestFingerprintCanonicalEquality: spellings of the same simulation must
// share a key — defaults applied explicitly or left zero, arrival process
// named or derived, empirical samples freshly allocated.
func TestFingerprintCanonicalEquality(t *testing.T) {
	base := baseParams()
	want := mustKey(t, base, 2)
	variants := []struct {
		name string
		mut  func(*queuesim.Params)
	}{
		{"zero slots (defaults to 1)", func(p *queuesim.Params) { p.Slots = 0 }},
		{"zero arrival kind (defaults to exponential)", func(p *queuesim.Params) { p.ArrivalKind = "" }},
		{"explicit arrival dist equal to derived", func(p *queuesim.Params) {
			p.Arrival = dist.ForRate(dist.KindExponential, p.ArrivalRate)
		}},
		{"tracer attached (excluded from key)", func(p *queuesim.Params) { p.Tracer = obs.NewRingTracer(4) }},
	}
	for _, v := range variants {
		p := base
		v.mut(&p)
		if got := mustKey(t, p, 2); got != want {
			t.Errorf("%s: key %v != base %v", v.name, got, want)
		}
	}
	// Zero NumQueries canonicalizes to the simulator default (1000).
	p := base
	p.NumQueries = 0
	if got := mustKey(t, p, 2); got != want {
		t.Errorf("zero NumQueries: key %v != base %v", got, want)
	}
	// Freshly built but value-equal empirical services hash identically.
	a, b := base, base
	a.Service = dist.NewEmpirical([]float64{10, 20, 30})
	a.ServiceRate = 0.05
	b.Service = dist.NewEmpirical([]float64{10, 20, 30})
	b.ServiceRate = 0.05
	if mustKey(t, a, 1) != mustKey(t, b, 1) {
		t.Error("equal empirical services produced different keys")
	}
	// Reps <= 0 canonicalizes to 1.
	if mustKey(t, base, 0) != mustKey(t, base, 1) {
		t.Error("reps 0 and 1 should share a key")
	}
}

// TestFingerprintFieldSensitivity: perturbing any single influential
// field must change the key. This is the property that makes memoization
// safe — no two semantically different tasks may collide by construction.
func TestFingerprintFieldSensitivity(t *testing.T) {
	base := baseParams()
	want := mustKey(t, base, 2)
	perturbs := []struct {
		name string
		mut  func(*queuesim.Params)
	}{
		{"ArrivalRate", func(p *queuesim.Params) { p.ArrivalRate *= 1.0000001 }},
		{"ArrivalKind", func(p *queuesim.Params) { p.ArrivalKind = dist.KindPareto }},
		{"Arrival dist", func(p *queuesim.Params) { p.Arrival = dist.Deterministic{Value: 100} }},
		{"Service dist", func(p *queuesim.Params) { p.Service = dist.NewExponential(0.021) }},
		{"ServiceRate", func(p *queuesim.Params) { p.ServiceRate += 1e-9 }},
		{"SprintRate", func(p *queuesim.Params) { p.SprintRate += 1e-9 }},
		{"Timeout", func(p *queuesim.Params) { p.Timeout += 1 }},
		{"Timeout sign", func(p *queuesim.Params) { p.Timeout = -1 }},
		{"BudgetSeconds", func(p *queuesim.Params) { p.BudgetSeconds += 1 }},
		{"RefillTime", func(p *queuesim.Params) { p.RefillTime += 1 }},
		{"Refill mode", func(p *queuesim.Params) { p.Refill = sprint.RefillContinuous }},
		{"Warmup zero", func(p *queuesim.Params) { p.Warmup = 0 }},
		{"Slots", func(p *queuesim.Params) { p.Slots = 2 }},
		{"NumQueries", func(p *queuesim.Params) { p.NumQueries = 2000 }},
		{"Warmup", func(p *queuesim.Params) { p.Warmup = 200 }},
		{"Seed", func(p *queuesim.Params) { p.Seed++ }},
	}
	seen := map[Key]string{want: "base"}
	for _, v := range perturbs {
		p := base
		v.mut(&p)
		got := mustKey(t, p, 2)
		if got == want {
			t.Errorf("perturbing %s did not change the key", v.name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("perturbations %s and %s collided", v.name, prev)
		}
		seen[got] = v.name
	}
	// Reps is part of the key too.
	if mustKey(t, base, 3) == want {
		t.Error("changing reps did not change the key")
	}
}

// TestFingerprintQuick fuzzes random parameter points: canonical equality
// of two independently-built Params values must imply key equality, and
// distinct points must (overwhelmingly) get distinct keys.
func TestFingerprintQuick(t *testing.T) {
	r := dist.NewRNG(42)
	seen := make(map[Key]queuesim.Params)
	for i := 0; i < 500; i++ {
		p := queuesim.Params{
			ArrivalRate:   0.001 + r.Float64()*0.02,
			Service:       dist.NewExponential(0.02 + r.Float64()*0.05),
			ServiceRate:   0.02 + r.Float64()*0.05,
			SprintRate:    0.05 + r.Float64()*0.1,
			Timeout:       float64(r.Intn(200)),
			BudgetSeconds: float64(r.Intn(500)),
			RefillTime:    100 + float64(r.Intn(900)),
			NumQueries:    100 + r.Intn(1000),
			Seed:          r.Uint64(),
		}
		reps := 1 + r.Intn(3)
		k := mustKey(t, p, reps)
		// Rebuilding the same point from identical field values must
		// reproduce the key (Fingerprint is a pure function).
		q := p
		q.Service = dist.NewExponential(p.Service.(dist.Exponential).Rate)
		if mustKey(t, q, reps) != k {
			t.Fatalf("fingerprint not reproducible at iteration %d", i)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("random points collided: %+v vs %+v", p, prev)
		}
		seen[k] = p
	}
}
