package sweep

import (
	"mdsprint/internal/dist"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sprint"
)

// GridSpec describes a Figure-10-style policy grid: the cross product of
// utilization, timeout and budget levels at fixed service/sprint rates.
// The experiment packages sweep grids like this to study prediction error
// by factor; the benchmarks and determinism tests in this package use the
// same shape so their workload is representative.
type GridSpec struct {
	// ServiceRate and SprintRate are mu and mu_m in queries/second.
	ServiceRate float64
	SprintRate  float64
	// Utilizations are arrival rates as fractions of ServiceRate.
	Utilizations []float64
	// Timeouts are sprint timeouts in seconds; RefillTime is the budget
	// refill window; BudgetPcts are budgets as fractions of one window.
	Timeouts   []float64
	RefillTime float64
	BudgetPcts []float64
	// NumQueries and Reps size each evaluation; Seed seeds point 0, and
	// successive points derive decorrelated seeds from it.
	NumQueries int
	Reps       int
	Seed       uint64
}

// DefaultGrid returns a quick-scale fig10 grid: 4 utilizations x 3
// timeouts x 3 budgets = 36 points at the paper's centroid levels.
func DefaultGrid() GridSpec {
	return GridSpec{
		ServiceRate:  1.0 / 90, // 40 qph, the paper's hi/low service split point
		SprintRate:   1.0 / 30,
		Utilizations: []float64{0.30, 0.50, 0.75, 0.95},
		Timeouts:     []float64{50, 100, 160},
		RefillTime:   500,
		BudgetPcts:   []float64{0.20, 0.40, 0.80},
		NumQueries:   400,
		Reps:         2,
		Seed:         1,
	}
}

// seedGamma decorrelates per-point seeds (the golden-ratio increment the
// simulator itself uses for per-replication streams).
const seedGamma = 0x9e3779b97f4a7c15

// Tasks expands the grid's cross product into engine tasks in
// deterministic order (utilization outermost, budget innermost).
func (g GridSpec) Tasks() []Task {
	out := make([]Task, 0, len(g.Utilizations)*len(g.Timeouts)*len(g.BudgetPcts))
	for _, u := range g.Utilizations {
		for _, to := range g.Timeouts {
			for _, b := range g.BudgetPcts {
				p := queuesim.Params{
					ArrivalRate:   u * g.ServiceRate,
					Service:       dist.NewExponential(g.ServiceRate),
					ServiceRate:   g.ServiceRate,
					SprintRate:    g.SprintRate,
					Timeout:       to,
					BudgetSeconds: sprint.BudgetFromPercent(b, g.RefillTime),
					RefillTime:    g.RefillTime,
					NumQueries:    g.NumQueries,
					Seed:          g.Seed + uint64(len(out))*seedGamma,
				}
				out = append(out, Task{Params: p, Reps: g.Reps})
			}
		}
	}
	return out
}
