// Package sweep is the shared policy-space evaluation engine behind every
// loop in this repository that replays the timeout-aware queue simulator
// at scale: the simulated-annealing timeout search (Section 4.2), policy
// comparisons against the big-burst/small-burst/Few-to-Many/Adrenaline
// heuristics (Section 4.3), burstable-instance packing (Section 4.4), the
// calibration bisection (Section 2.3), and the experiment grid sweeps
// (Figures 10-11, simulator validation).
//
// The engine does two things for those callers:
//
//   - Sharding: EvaluateAll/EvaluateAsync spread a batch of independent
//     (Params, Reps) evaluations across a bounded worker pool. Each task
//     carries its own RNG seed and each result lands at its task's index,
//     so batch output is bit-for-bit identical to the serial order
//     regardless of worker count.
//   - Memoization: completed evaluations are cached in a concurrency-safe
//     LRU keyed by a canonical fingerprint of (Params, Reps). Policy
//     searches revisit points constantly — annealing re-proposes nearby
//     timeouts, packing re-scores baseline plans per workload, bisection
//     re-evaluates bracket edges — and a hit returns the memoized
//     prediction without touching the simulator. In-flight evaluations
//     are single-flight: concurrent requests for one key run it once.
//
// Because the simulator is a deterministic function of its canonicalized
// parameters (enforced by sprintlint's nondeterm analyzer and the
// differential tests in this package), memoization is semantically
// invisible: a cached sweep reproduces an uncached sweep exactly.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
)

// Task is one evaluation point: a simulator configuration plus the number
// of pooled replications (Predict semantics; 0 means 1).
type Task struct {
	Params queuesim.Params
	Reps   int
}

// DefaultCacheSize bounds the memoization LRU when Options.CacheSize is
// zero. Entries hold a Key and a Prediction (a few floats), so the
// default retains a large sweep's worth of points in well under a
// megabyte.
const DefaultCacheSize = 4096

// TaskHook runs before each batch task's evaluation, outside the
// memoization cache — fault injectors use it to perturb individual
// tasks without their failures ever being memoized. A non-nil return
// fails the task; a panic is recovered and surfaced the same way.
type TaskHook func(index int, t Task) error

// Options configures an Engine.
type Options struct {
	// Workers bounds batch concurrency (0 means NumCPU).
	Workers int
	// CacheSize is the maximum number of memoized evaluations (0 means
	// DefaultCacheSize; negative disables memoization entirely, which
	// the throughput experiments use to time honest evaluations).
	CacheSize int
	// Metrics receives the engine's counters and gauges; nil records
	// into obs.Default().
	Metrics *obs.Registry
	// TaskHook, when set, runs before each batch task (see TaskHook).
	TaskHook TaskHook
}

// Engine evaluates batches of simulator tasks on a worker pool with
// memoization. Engines are safe for concurrent use.
type Engine struct {
	workers int
	cache   *cache // nil when memoization is disabled
	hook    TaskHook

	tasks     atomic.Uint64
	evals     atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	bypasses  atomic.Uint64
	evictions atomic.Uint64
	panics    atomic.Uint64
	canceled  atomic.Uint64

	m engineMetrics
}

// engineMetrics are the obs-registry handles mirrored by the engine's
// local counters (local counters make per-engine tests independent of the
// shared registry).
type engineMetrics struct {
	tasks, evals     *obs.Counter
	hits, misses     *obs.Counter
	bypasses, evicts *obs.Counter
	entries          *obs.Gauge
	batches          *obs.Counter
	batchTasks       *obs.Histogram
	panics           *obs.Counter
	canceled         *obs.Counter
}

// New returns an engine with the given options.
func New(o Options) *Engine {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	size := o.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	e := &Engine{workers: workers, hook: o.TaskHook}
	if size > 0 {
		e.cache = newCache(size)
	}
	reg := obs.Or(o.Metrics)
	e.m = engineMetrics{
		tasks:      reg.Counter("mdsprint_sweep_tasks_total", "evaluation tasks submitted to the sweep engine"),
		evals:      reg.Counter("mdsprint_sweep_evals_total", "simulator evaluations actually executed (misses + bypasses)"),
		hits:       reg.Counter("mdsprint_sweep_cache_hits_total", "tasks served from the memoization cache"),
		misses:     reg.Counter("mdsprint_sweep_cache_misses_total", "tasks that had to run the simulator and were cached"),
		bypasses:   reg.Counter("mdsprint_sweep_cache_bypass_total", "tasks evaluated uncached (tracer/clock attached, unfingerprintable, or cache disabled)"),
		evicts:     reg.Counter("mdsprint_sweep_cache_evictions_total", "memoized evaluations evicted by the LRU bound"),
		entries:    reg.Gauge("mdsprint_sweep_cache_entries", "memoized evaluations currently retained"),
		batches:    reg.Counter("mdsprint_sweep_batches_total", "EvaluateAll/EvaluateAsync batches started"),
		batchTasks: reg.Histogram("mdsprint_sweep_batch_tasks", "tasks per sweep batch", 0),
		panics:     reg.Counter("mdsprint_sweep_recovered_panics_total", "worker panics recovered and surfaced as task errors"),
		canceled:   reg.Counter("mdsprint_sweep_canceled_tasks_total", "batch tasks abandoned by context cancellation"),
	}
	return e
}

// Workers returns the engine's worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

var (
	sharedOnce sync.Once
	sharedEng  *Engine
)

// Shared returns the process-wide engine the internal packages use when
// no explicit engine is supplied. Sharing one engine means the
// calibration search, the policy planners and the experiment sweeps all
// memoize into one pool, so work one layer spends is visible to the
// others.
func Shared() *Engine {
	sharedOnce.Do(func() { sharedEng = New(Options{}) })
	return sharedEng
}

// Or returns e, or the shared engine when e is nil — the helper consumer
// packages use to resolve an optional Engine field.
func Or(e *Engine) *Engine {
	if e != nil {
		return e
	}
	return Shared()
}

// Stats is a point-in-time snapshot of one engine's counters.
type Stats struct {
	// Tasks is every evaluation request; Evals counts the subset that
	// actually ran the simulator (misses plus bypasses).
	Tasks, Evals uint64
	// Hits, Misses and Bypasses partition cacheable traffic; Evictions
	// counts LRU displacements; Entries is the current cache size.
	Hits, Misses, Bypasses, Evictions uint64
	Entries                           int
	// RecoveredPanics counts worker panics recovered into task errors;
	// Canceled counts batch tasks abandoned by context cancellation.
	RecoveredPanics, Canceled uint64
}

// HitRate returns hits / (hits + misses), or 0 before any cacheable
// traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Tasks:     e.tasks.Load(),
		Evals:     e.evals.Load(),
		Hits:      e.hits.Load(),
		Misses:    e.misses.Load(),
		Bypasses:  e.bypasses.Load(),
		Evictions: e.evictions.Load(),

		RecoveredPanics: e.panics.Load(),
		Canceled:        e.canceled.Load(),
	}
	if e.cache != nil {
		s.Entries = e.cache.len()
	}
	return s
}

// Lookup reports whether t's result is already memoized, without
// evaluating, waiting, or perturbing the engine's counters. In-flight
// computations, tracer/clock-carrying tasks, unfingerprintable Params
// and memoized failures all report ok=false. The staged estimator
// (internal/tier) uses this as its cache tier: a hit is a finished
// ground-truth answer at lookup cost, a miss falls through to
// simulation instead of blocking behind someone else's evaluation.
func (e *Engine) Lookup(t Task) (queuesim.Prediction, bool) {
	if e.cache == nil || t.Params.Tracer != nil || t.Params.Clock != nil {
		return queuesim.Prediction{}, false
	}
	reps := t.Reps
	if reps <= 0 {
		reps = 1
	}
	key, err := Fingerprint(t.Params, reps)
	if err != nil {
		return queuesim.Prediction{}, false
	}
	en, ok := e.cache.peek(key)
	if !ok || en.err != nil {
		return queuesim.Prediction{}, false
	}
	return en.pred, true
}

// Evaluate runs (or recalls) one task. Tasks whose Params carry a Tracer
// or a Clock bypass the cache: a memoized recall would silently skip
// their side effects (lifecycle events, timed metrics), so observed runs
// are always executed.
func (e *Engine) Evaluate(t Task) (queuesim.Prediction, error) {
	pred, _, err := e.evaluateOutcome(t)
	return pred, err
}

// EvaluateSpan is Evaluate nested under parent as a "sweep.eval" span
// annotated with the cache outcome ("hit"/"miss"/"bypass"). A nil parent
// is exactly Evaluate — callers pass their span through unconditionally.
func (e *Engine) EvaluateSpan(parent *obs.Span, t Task) (queuesim.Prediction, error) {
	if parent == nil {
		return e.Evaluate(t)
	}
	sp := parent.StartChild("sweep.eval")
	sp.SetFloat("timeout_s", t.Params.Timeout)
	pred, outcome, err := e.evaluateOutcome(t)
	sp.SetString("cache", outcome)
	sp.SetError(err)
	sp.End()
	return pred, err
}

// Cache outcomes annotated on sweep spans and returned by
// evaluateOutcome.
const (
	outcomeHit    = "hit"
	outcomeMiss   = "miss"
	outcomeBypass = "bypass"
)

// evaluateOutcome is Evaluate's body, additionally reporting how the
// cache treated the task.
func (e *Engine) evaluateOutcome(t Task) (queuesim.Prediction, string, error) {
	e.tasks.Add(1)
	e.m.tasks.Inc()
	reps := t.Reps
	if reps <= 0 {
		reps = 1
	}
	if e.cache == nil || t.Params.Tracer != nil || t.Params.Clock != nil {
		pred, err := e.bypass(t.Params, reps)
		return pred, outcomeBypass, err
	}
	key, err := Fingerprint(t.Params, reps)
	if err != nil {
		// Unfingerprintable (custom distribution type) or invalid:
		// evaluate uncached and let Predict report the authoritative
		// validation error.
		pred, err := e.bypass(t.Params, reps)
		return pred, outcomeBypass, err
	}
	en, owner, evicted := e.cache.getOrStart(key)
	if evicted > 0 {
		e.evictions.Add(uint64(evicted))
		e.m.evicts.Add(float64(evicted))
	}
	if owner {
		e.misses.Add(1)
		e.m.misses.Inc()
		e.evals.Add(1)
		e.m.evals.Inc()
		pred, err := e.safePredict(t.Params, reps)
		en.finish(pred, err)
		e.m.entries.Set(float64(e.cache.len()))
		return pred, outcomeMiss, err
	}
	e.hits.Add(1)
	e.m.hits.Inc()
	<-en.ready
	return en.pred, outcomeHit, en.err
}

// bypass evaluates uncached.
func (e *Engine) bypass(p queuesim.Params, reps int) (queuesim.Prediction, error) {
	e.bypasses.Add(1)
	e.m.bypasses.Inc()
	e.evals.Add(1)
	e.m.evals.Inc()
	return e.safePredict(p, reps)
}

// safePredict runs the simulator with panic containment: a panic in a
// worker (injected by a chaos hook or escaping a simulator bug) is
// recovered into that task's error instead of killing the pool. The
// single-flight owner still calls finish, so waiters never deadlock on
// a panicked owner.
func (e *Engine) safePredict(p queuesim.Params, reps int) (pred queuesim.Prediction, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.panics.Add(1)
			e.m.panics.Inc()
			pred, err = queuesim.Prediction{}, fmt.Errorf("sweep: recovered panic: %v", r)
		}
	}()
	return queuesim.Predict(p, reps, 1)
}

// runHook invokes the engine's task hook with the same panic
// containment as safePredict.
func (e *Engine) runHook(i int, t Task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			e.panics.Add(1)
			e.m.panics.Inc()
			err = fmt.Errorf("sweep: recovered panic: %v", r)
		}
	}()
	return e.hook(i, t)
}

// runTask is one batch task: hook (if any), then evaluation. When the
// batch is traced, each task gets a "sweep.task" child span annotated
// with the worker that ran it and the cache outcome.
func (e *Engine) runTask(parent *obs.Span, worker, i int, t Task) (queuesim.Prediction, error) {
	sp := parent.StartChild("sweep.task")
	sp.SetInt("index", int64(i))
	sp.SetInt("worker", int64(worker))
	sp.SetFloat("timeout_s", t.Params.Timeout)
	if e.hook != nil {
		if err := e.runHook(i, t); err != nil {
			sp.SetError(err)
			sp.End()
			return queuesim.Prediction{}, err
		}
	}
	pred, outcome, err := e.evaluateOutcome(t)
	sp.SetString("cache", outcome)
	sp.SetError(err)
	sp.End()
	return pred, err
}

// Batch is an in-flight EvaluateAsync result.
type Batch struct {
	preds []queuesim.Prediction
	errs  []error
	done  chan struct{}
}

// Wait blocks until every task finished and returns the predictions in
// task order. The error (if any) is the lowest-indexed task's, so a
// failing batch reports deterministically regardless of scheduling; the
// returned slice is still fully populated for the tasks that succeeded.
func (b *Batch) Wait() ([]queuesim.Prediction, error) {
	<-b.done
	for i, err := range b.errs {
		if err != nil {
			return b.preds, fmt.Errorf("sweep: task %d: %w", i, err)
		}
	}
	return b.preds, nil
}

// EvaluateAsync shards the batch across the worker pool and returns
// immediately; collect with Wait. Each replication inside a task runs
// serially (queuesim.Predict with one worker) so parallelism lives at
// task granularity and a task's result never depends on pool size.
func (e *Engine) EvaluateAsync(tasks []Task) *Batch {
	return e.EvaluateAsyncCtx(context.Background(), tasks)
}

// EvaluateAsyncCtx is EvaluateAsync honoring cancellation: once ctx is
// done, remaining tasks are abandoned with ctx's error (already-running
// simulations finish their point). Results for completed tasks are
// still populated, and Wait reports the lowest-indexed error as usual.
func (e *Engine) EvaluateAsyncCtx(ctx context.Context, tasks []Task) *Batch {
	if ctx == nil {
		ctx = context.Background()
	}
	e.m.batches.Inc()
	e.m.batchTasks.Observe(float64(len(tasks)))
	sp := obs.StartSpanCtx(ctx, "sweep.batch")
	sp.SetInt("tasks", int64(len(tasks)))
	b := &Batch{
		preds: make([]queuesim.Prediction, len(tasks)),
		errs:  make([]error, len(tasks)),
		done:  make(chan struct{}),
	}
	workers := e.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	sp.SetInt("workers", int64(workers))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					e.canceled.Add(1)
					e.m.canceled.Inc()
					b.errs[i] = err
					continue
				}
				b.preds[i], b.errs[i] = e.runTask(sp, w, i, tasks[i])
			}
		}(w)
	}
	go func() {
		for i := range tasks {
			idx <- i
		}
		close(idx)
		wg.Wait()
		sp.End()
		close(b.done)
	}()
	return b
}

// EvaluateAll evaluates the batch and blocks for the results.
func (e *Engine) EvaluateAll(tasks []Task) ([]queuesim.Prediction, error) {
	return e.EvaluateAsync(tasks).Wait()
}

// EvaluateAllCtx is EvaluateAll honoring cancellation.
func (e *Engine) EvaluateAllCtx(ctx context.Context, tasks []Task) ([]queuesim.Prediction, error) {
	return e.EvaluateAsyncCtx(ctx, tasks).Wait()
}

// MeanRTs is EvaluateAll reduced to each task's mean response time — the
// shape policy searches score candidates with.
func (e *Engine) MeanRTs(tasks []Task) ([]float64, error) {
	return e.MeanRTsCtx(context.Background(), tasks)
}

// MeanRTsCtx is MeanRTs honoring cancellation.
func (e *Engine) MeanRTsCtx(ctx context.Context, tasks []Task) ([]float64, error) {
	preds, err := e.EvaluateAllCtx(ctx, tasks)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(preds))
	for i, p := range preds {
		out[i] = p.MeanRT
	}
	return out, nil
}
