package sweep

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
)

// testGrid is a small but non-trivial fig10-style grid (36 points).
func testGrid() []Task {
	g := DefaultGrid()
	g.NumQueries = 200
	return g.Tasks()
}

// bitsOf projects a prediction onto its exact float64 bit patterns so
// differential tests compare bit-for-bit, not approximately.
func bitsOf(p queuesim.Prediction) [3]uint64 {
	return [3]uint64{
		math.Float64bits(p.MeanRT),
		math.Float64bits(p.P95RT),
		math.Float64bits(p.P99RT),
	}
}

// TestShardingDeterminism is the differential test the engine's contract
// rests on: the same batch evaluated serially, on 4 workers, and on
// NumCPU workers must produce bit-identical predictions in identical
// order, and a cached re-run must reproduce the uncached run exactly.
func TestShardingDeterminism(t *testing.T) {
	tasks := testGrid()
	baseline, err := New(Options{Workers: 1, CacheSize: -1, Metrics: obs.NewRegistry()}).EvaluateAll(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.NumCPU()} {
		e := New(Options{Workers: workers, CacheSize: -1, Metrics: obs.NewRegistry()})
		got, err := e.EvaluateAll(tasks)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tasks {
			if bitsOf(got[i]) != bitsOf(baseline[i]) {
				t.Fatalf("workers=%d task %d: %+v != serial %+v", workers, i, got[i], baseline[i])
			}
		}
	}

	// Cached engine: first pass misses everything, second pass must be
	// served ~entirely from memoization and still be bit-identical.
	e := New(Options{Workers: 4, Metrics: obs.NewRegistry()})
	first, err := e.EvaluateAll(tasks)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.EvaluateAll(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if bitsOf(first[i]) != bitsOf(baseline[i]) {
			t.Fatalf("cached engine task %d diverged from serial baseline", i)
		}
		if bitsOf(second[i]) != bitsOf(first[i]) {
			t.Fatalf("cache replay task %d diverged from its own first run", i)
		}
	}
	s := e.Stats()
	if s.Misses != uint64(len(tasks)) {
		t.Fatalf("first pass should miss every task: %+v", s)
	}
	if s.Hits < uint64(len(tasks)) {
		t.Fatalf("second pass should hit every task: %+v", s)
	}
	if rate := s.HitRate(); rate < 0.5 {
		t.Fatalf("hit rate %v after replaying the grid once", rate)
	}
}

// TestEvaluateMatchesPredict pins the engine to the simulator it wraps.
func TestEvaluateMatchesPredict(t *testing.T) {
	task := testGrid()[7]
	want, err := queuesim.Predict(task.Params, task.Reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(Options{Metrics: obs.NewRegistry()}).Evaluate(task)
	if err != nil {
		t.Fatal(err)
	}
	if bitsOf(got) != bitsOf(want) {
		t.Fatalf("Evaluate %+v != Predict %+v", got, want)
	}
}

// TestSingleFlight hammers one key from many goroutines: exactly one
// simulator evaluation may run, everyone gets the identical result.
func TestSingleFlight(t *testing.T) {
	e := New(Options{Workers: 8, Metrics: obs.NewRegistry()})
	task := testGrid()[0]
	const callers = 32
	preds := make([]queuesim.Prediction, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := e.Evaluate(task)
			if err != nil {
				t.Error(err)
				return
			}
			preds[i] = p
		}(i)
	}
	wg.Wait()
	s := e.Stats()
	if s.Evals != 1 {
		t.Fatalf("single-flight ran the simulator %d times for one key", s.Evals)
	}
	for i := 1; i < callers; i++ {
		if bitsOf(preds[i]) != bitsOf(preds[0]) {
			t.Fatalf("caller %d saw a different prediction", i)
		}
	}
}

// TestLRUEviction bounds the cache and checks that displaced keys
// re-evaluate while retained ones hit.
func TestLRUEviction(t *testing.T) {
	tasks := testGrid()
	e := New(Options{Workers: 1, CacheSize: 4, Metrics: obs.NewRegistry()})
	if _, err := e.EvaluateAll(tasks[:8]); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Evictions != 4 {
		t.Fatalf("8 inserts into a 4-entry cache should evict 4, got %+v", s)
	}
	if s.Entries != 4 {
		t.Fatalf("cache should be at its bound, got %d entries", s.Entries)
	}
	// tasks[4:8] are the retained MRU half; tasks[0] was evicted.
	if _, err := e.Evaluate(tasks[7]); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Hits; got != 1 {
		t.Fatalf("retained key should hit, hits=%d", got)
	}
	if _, err := e.Evaluate(tasks[0]); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Evals; got != 9 {
		t.Fatalf("evicted key should re-evaluate, evals=%d", got)
	}
}

// TestTracerBypassesCache: observed runs must execute every time so their
// side effects (trace events) fire, and must never poison the cache.
func TestTracerBypassesCache(t *testing.T) {
	e := New(Options{Workers: 1, Metrics: obs.NewRegistry()})
	task := testGrid()[0]
	tr := obs.NewRingTracer(16)
	task.Params.Tracer = tr
	for i := 0; i < 2; i++ {
		if _, err := e.Evaluate(task); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Bypasses != 2 || s.Evals != 2 || s.Hits != 0 {
		t.Fatalf("traced tasks must bypass the cache: %+v", s)
	}
	if len(tr.Events()) == 0 {
		t.Fatal("traced evaluation emitted no events")
	}
}

// TestBatchErrorIsLowestIndex: a failing batch must report the same error
// no matter how the pool schedules it.
func TestBatchErrorIsLowestIndex(t *testing.T) {
	tasks := testGrid()[:6]
	bad := queuesim.Params{ArrivalRate: -1, Service: dist.NewExponential(1), ServiceRate: 1}
	tasks[1].Params = bad
	tasks[4].Params = queuesim.Params{ArrivalRate: 1, ServiceRate: -2, Service: dist.NewExponential(1)}
	e := New(Options{Workers: 4, Metrics: obs.NewRegistry()})
	var firstMsg string
	for trial := 0; trial < 3; trial++ {
		preds, err := e.EvaluateAll(tasks)
		if err == nil {
			t.Fatal("invalid task must fail the batch")
		}
		if trial == 0 {
			firstMsg = err.Error()
		} else if err.Error() != firstMsg {
			t.Fatalf("batch error not deterministic: %q vs %q", err.Error(), firstMsg)
		}
		// Healthy tasks still produced results.
		if preds[0].QueriesSimulated == 0 {
			t.Fatal("successful task's result missing from failed batch")
		}
	}
	if got := e.Stats().Hits; got == 0 {
		t.Fatal("healthy tasks in a failing batch should still memoize across trials")
	}
}

// TestSharedEngine: the process-wide engine exists and resolves through
// Or.
func TestSharedEngine(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared must return one engine")
	}
	if Or(nil) != Shared() {
		t.Fatal("Or(nil) must resolve to the shared engine")
	}
	e := New(Options{Metrics: obs.NewRegistry()})
	if Or(e) != e {
		t.Fatal("Or must pass an explicit engine through")
	}
}

// TestMeanRTs reduces a batch to mean response times in task order.
func TestMeanRTs(t *testing.T) {
	tasks := testGrid()[:4]
	e := New(Options{Metrics: obs.NewRegistry()})
	preds, err := e.EvaluateAll(tasks)
	if err != nil {
		t.Fatal(err)
	}
	rts, err := e.MeanRTs(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if math.Float64bits(rts[i]) != math.Float64bits(preds[i].MeanRT) {
			t.Fatalf("MeanRTs[%d] != EvaluateAll mean", i)
		}
	}
}
