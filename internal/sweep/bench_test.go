package sweep

import (
	"testing"

	"mdsprint/internal/obs"
)

// benchGrid is the fig10 grid at its default (quick) scale: 36 policy
// points, 2 replications each. BENCH_sweep.json records these numbers;
// regenerate with `make bench-sweep`.
func benchGrid() []Task { return DefaultGrid().Tasks() }

// BenchmarkSweepSerial evaluates the grid on one worker with memoization
// off — the pre-engine baseline every consumer used to pay per sweep.
func BenchmarkSweepSerial(b *testing.B) {
	tasks := benchGrid()
	for i := 0; i < b.N; i++ {
		e := New(Options{Workers: 1, CacheSize: -1, Metrics: obs.NewRegistry()})
		if _, err := e.EvaluateAll(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSharded evaluates the grid on 4 workers, memoization off,
// isolating the worker-pool speedup (≈linear in physical cores; on a
// single-CPU host it measures pure sharding overhead instead).
func BenchmarkSweepSharded(b *testing.B) {
	tasks := benchGrid()
	for i := 0; i < b.N; i++ {
		e := New(Options{Workers: 4, CacheSize: -1, Metrics: obs.NewRegistry()})
		if _, err := e.EvaluateAll(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCached re-sweeps the grid against a warm cache — the
// annealing/packing steady state, where nearly every proposal has been
// scored before. Reports the measured hit rate.
func BenchmarkSweepCached(b *testing.B) {
	tasks := benchGrid()
	e := New(Options{Workers: 4, Metrics: obs.NewRegistry()})
	if _, err := e.EvaluateAll(tasks); err != nil {
		b.Fatal(err) // warm the cache outside the timed region
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EvaluateAll(tasks); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(e.Stats().HitRate(), "hit-rate")
}
