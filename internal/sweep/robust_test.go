package sweep

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"mdsprint/internal/obs"
)

// TestPoolSurvivesInjectedPanics is the ISSUE's no-panic-kills-the-pool
// guarantee: a hook panicking on some tasks must surface per-task
// errors, leave every other task's result intact, and leave the engine
// fully usable for the next batch.
func TestPoolSurvivesInjectedPanics(t *testing.T) {
	tasks := testGrid()
	isVictim := func(i int) bool { return i == 3 || i == 11 || i == 20 }
	var disarmed atomic.Bool
	e := New(Options{
		Workers: 4, CacheSize: -1, Metrics: obs.NewRegistry(),
		TaskHook: func(i int, _ Task) error {
			if !disarmed.Load() && isVictim(i) {
				panic("chaos says no")
			}
			return nil
		},
	})
	b := e.EvaluateAsync(tasks)
	preds, err := b.Wait()
	if err == nil {
		t.Fatal("expected the batch to report the panicked tasks")
	}
	// Deterministic reporting: the lowest-indexed failure wins.
	if !strings.Contains(err.Error(), "task 3") || !strings.Contains(err.Error(), "recovered panic") {
		t.Fatalf("batch error %q, want the recovered panic of task 3", err)
	}
	want, werr := New(Options{Workers: 1, CacheSize: -1, Metrics: obs.NewRegistry()}).EvaluateAll(tasks)
	if werr != nil {
		t.Fatal(werr)
	}
	for i := range tasks {
		if isVictim(i) {
			continue
		}
		if bitsOf(preds[i]) != bitsOf(want[i]) {
			t.Fatalf("survivor task %d perturbed by its neighbours' panics", i)
		}
	}
	if got := e.Stats().RecoveredPanics; got != 3 {
		t.Fatalf("RecoveredPanics = %d, want 3", got)
	}
	// The pool must still work: same engine, clean batch.
	disarmed.Store(true)
	again, err := e.EvaluateAll(tasks)
	if err != nil {
		t.Fatalf("engine unusable after recovered panics: %v", err)
	}
	for i := range tasks {
		if bitsOf(again[i]) != bitsOf(want[i]) {
			t.Fatalf("post-panic batch diverged at task %d", i)
		}
	}
}

func TestBatchReportsLowestIndexedHookError(t *testing.T) {
	tasks := testGrid()
	e := New(Options{
		Workers: 4, Metrics: obs.NewRegistry(),
		TaskHook: func(i int, _ Task) error {
			if i == 9 || i == 4 {
				return errors.New("injected")
			}
			return nil
		},
	})
	_, err := e.EvaluateAll(tasks)
	if err == nil || !strings.Contains(err.Error(), "task 4") {
		t.Fatalf("batch error %v, want task 4 (the lowest failing index)", err)
	}
}

// TestHookFaultsAreNotMemoized: the hook runs outside the cache, so an
// injected failure must never poison the memoized result for its task.
func TestHookFaultsAreNotMemoized(t *testing.T) {
	tasks := testGrid()
	var failing atomic.Bool
	failing.Store(true)
	e := New(Options{
		Workers: 4, Metrics: obs.NewRegistry(),
		TaskHook: func(i int, _ Task) error {
			if failing.Load() {
				return errors.New("injected")
			}
			return nil
		},
	})
	if _, err := e.EvaluateAll(tasks); err == nil {
		t.Fatal("setup: the failing batch must fail")
	}
	failing.Store(false)
	got, err := e.EvaluateAll(tasks)
	if err != nil {
		t.Fatalf("cache poisoned by injected hook errors: %v", err)
	}
	want, werr := New(Options{Workers: 1, CacheSize: -1, Metrics: obs.NewRegistry()}).EvaluateAll(tasks)
	if werr != nil {
		t.Fatal(werr)
	}
	for i := range tasks {
		if bitsOf(got[i]) != bitsOf(want[i]) {
			t.Fatalf("task %d served a faulted result", i)
		}
	}
}

func TestEvaluateAsyncCtxCancellation(t *testing.T) {
	tasks := testGrid()
	e := New(Options{Workers: 2, Metrics: obs.NewRegistry()})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the batch starts: every task is abandoned
	_, err := e.EvaluateAllCtx(ctx, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error %v, want context.Canceled", err)
	}
	if got := e.Stats().Canceled; got != uint64(len(tasks)) {
		t.Fatalf("Canceled = %d, want %d", got, len(tasks))
	}
	// The engine survives cancellation.
	if _, err := e.EvaluateAll(tasks[:4]); err != nil {
		t.Fatalf("engine unusable after a canceled batch: %v", err)
	}
	if _, err := e.MeanRTsCtx(ctx, tasks[:2]); !errors.Is(err, context.Canceled) {
		t.Fatalf("MeanRTsCtx error %v, want context.Canceled", err)
	}
}

func TestEvaluateAsyncCtxNilContext(t *testing.T) {
	tasks := testGrid()[:4]
	e := New(Options{Workers: 2, Metrics: obs.NewRegistry()})
	preds, err := e.EvaluateAsyncCtx(nil, tasks).Wait() //nolint:staticcheck // nil ctx tolerance is the contract under test
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(tasks) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(tasks))
	}
}
