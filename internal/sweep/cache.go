package sweep

import (
	"container/list"
	"sync"

	"mdsprint/internal/queuesim"
)

// entry is one memoized (or in-flight) evaluation. ready is closed when
// pred/err are final; waiters arriving while a computation is in flight
// block on it instead of duplicating the work (single-flight).
type entry struct {
	key   Key
	ready chan struct{}
	pred  queuesim.Prediction
	err   error
}

// cache is a concurrency-safe, size-bounded LRU of completed evaluations.
// The list front is most-recently used; lookups promote, inserts evict
// from the back once the bound is exceeded. Evicting an in-flight entry
// is safe: the computation finishes and its waiters are served, the
// result just isn't retained.
type cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[Key]*list.Element
}

func newCache(max int) *cache {
	return &cache{max: max, ll: list.New(), items: make(map[Key]*list.Element, max)}
}

// getOrStart returns the entry for key and whether the caller owns the
// computation. owner=true means the entry is a fresh placeholder the
// caller must fill via finish(); owner=false means another goroutine is
// (or was) computing it — wait on entry.ready.
func (c *cache) getOrStart(key Key) (e *entry, owner bool, evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry), false, 0
	}
	e = &entry{key: key, ready: make(chan struct{})}
	c.items[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		evicted++
	}
	return e, true, evicted
}

// peek returns the completed entry for key without starting anything:
// misses and in-flight computations both report ok=false. A hit still
// promotes the entry in the LRU — a peeked result is a used result.
func (c *cache) peek(key Key) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	select {
	case <-e.ready:
	default:
		return nil, false // in flight: peeking must never block
	}
	c.ll.MoveToFront(el)
	return e, true
}

// finish publishes the owner's result and wakes all waiters.
func (e *entry) finish(pred queuesim.Prediction, err error) {
	e.pred = pred
	e.err = err
	close(e.ready)
}

// len returns the number of retained entries.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
