package sweep

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"mdsprint/internal/dist"
	"mdsprint/internal/queuesim"
)

// Key is a 128-bit fingerprint of one (Params, Reps) evaluation point.
// Keys are derived from a canonical byte encoding of every field that
// influences the simulation's output, so two tasks with equal keys are
// guaranteed (up to FNV-128 collisions) to produce bit-identical
// predictions, and any semantic change to a task changes its key.
type Key [16]byte

// String renders the key as hex for logs and test failure messages.
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// appendFloat appends v's exact IEEE-754 bit pattern.
func appendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// appendUint appends a 64-bit integer field.
func appendUint(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// appendString appends a length-prefixed string so adjacent fields can
// never alias across the boundary.
func appendString(b []byte, s string) []byte {
	b = appendUint(b, uint64(len(s)))
	return append(b, s...)
}

// Fingerprint computes the memoization key for evaluating p with reps
// pooled replications. The encoding covers the canonicalized Params
// (defaults applied, arrival distribution resolved) plus reps; Tracer and
// Clock are deliberately excluded — they observe a run without changing
// its measured response times. Distributions without a canonical encoding
// (types outside internal/dist's catalog) return an error, which the
// engine treats as "uncacheable" rather than risking a collision.
func Fingerprint(p queuesim.Params, reps int) (Key, error) {
	if reps <= 0 {
		reps = 1
	}
	c := p.Canonical()
	arrival := c.Arrival
	if arrival == nil {
		// Run derives the arrival process from (ArrivalKind,
		// ArrivalRate) when none is given; resolving it here makes the
		// explicit and the derived spelling of the same process hash
		// identically. Mirror queuesim's validation rather than
		// panicking inside dist.ForRate on garbage input.
		if c.ArrivalRate <= 0 || math.IsNaN(c.ArrivalRate) {
			return Key{}, fmt.Errorf("sweep: arrival rate %v must be positive", c.ArrivalRate)
		}
		arrival = dist.ForRate(c.ArrivalKind, c.ArrivalRate)
	}
	if c.Service == nil {
		return Key{}, fmt.Errorf("sweep: service distribution required")
	}
	b := make([]byte, 0, 256)
	// v2 added the discipline, server count and dispatcher fields; the
	// version bump retires every v1 key rather than risking a stale hit.
	b = appendString(b, "mdsprint/sweep/v2")
	b = appendFloat(b, c.ArrivalRate)
	var err error
	if b, err = dist.AppendCanon(b, arrival); err != nil {
		return Key{}, err
	}
	if b, err = dist.AppendCanon(b, c.Service); err != nil {
		return Key{}, err
	}
	b = appendFloat(b, c.ServiceRate)
	b = appendFloat(b, c.SprintRate)
	b = appendFloat(b, c.Timeout)
	b = appendFloat(b, c.BudgetSeconds)
	b = appendFloat(b, c.RefillTime)
	b = appendUint(b, uint64(c.Refill))
	b = appendUint(b, uint64(c.Slots))
	b = appendUint(b, uint64(c.NumQueries))
	b = appendUint(b, uint64(c.Warmup))
	b = appendUint(b, c.Seed)
	// Discipline, servers and dispatcher. Canonical has already applied
	// the defaults (FIFO, 1 server, nil dispatcher below 2 servers), so
	// the zero spelling and the explicit default hash identically; a
	// dispatcher is identified by its canonical spec string.
	b = appendString(b, string(c.Discipline.Kind))
	b = appendFloat(b, c.Discipline.PredictCV)
	b = appendUint(b, uint64(c.Servers))
	dispatchCanon := ""
	if c.Dispatch != nil {
		dispatchCanon = c.Dispatch.Canon()
	}
	b = appendString(b, dispatchCanon)
	b = appendUint(b, uint64(reps))

	h := fnv.New128a()
	// hash.Hash.Write never returns an error.
	//lint:ignore errdrop fnv's Write is documented to never fail
	h.Write(b)
	var k Key
	h.Sum(k[:0])
	return k, nil
}
