package sweep

import (
	"errors"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
)

// TestLookupSemantics pins the silent-peek contract the tier estimator
// builds on: a Lookup never evaluates, never blocks on an in-flight
// owner, never moves the hit/miss counters, and a hit is bit-identical
// to what Evaluate returned for the same task.
func TestLookupSemantics(t *testing.T) {
	e := New(Options{Workers: 2, Metrics: obs.NewRegistry()})
	task := Task{Params: queuesim.Params{
		ArrivalRate: 0.6,
		Service:     dist.NewExponential(1),
		ServiceRate: 1,
		Timeout:     -1,
		NumQueries:  400,
		Seed:        7,
	}, Reps: 2}

	// Cold: a miss, and no counter movement.
	if _, ok := e.Lookup(task); ok {
		t.Fatal("Lookup hit on a cold cache")
	}
	if s := e.Stats(); s.Tasks != 0 || s.Hits != 0 || s.Misses != 0 || s.Evals != 0 {
		t.Fatalf("cold Lookup moved counters: %+v", s)
	}

	want, err := e.Evaluate(task)
	if err != nil {
		t.Fatal(err)
	}
	after := e.Stats()

	got, ok := e.Lookup(task)
	if !ok {
		t.Fatal("Lookup missed a memoized task")
	}
	if bitsOf(got) != bitsOf(want) {
		t.Fatalf("Lookup %+v != Evaluate %+v", got, want)
	}
	// Equivalent spellings canonicalize to the same key.
	alias := task
	alias.Params.Slots = 1
	alias.Params.ArrivalKind = dist.KindExponential
	if _, ok := e.Lookup(alias); !ok {
		t.Fatal("Lookup missed a canonically-equal spelling")
	}
	if s := e.Stats(); s != after {
		t.Fatalf("Lookup moved counters: %+v -> %+v", after, s)
	}

	// Different reps is a different key.
	other := task
	other.Reps = 3
	if _, ok := e.Lookup(other); ok {
		t.Fatal("Lookup hit across differing reps")
	}

	// Tracer-carrying tasks never consult the cache.
	traced := task
	traced.Params.Tracer = obs.NewRingTracer(16)
	if _, ok := e.Lookup(traced); ok {
		t.Fatal("Lookup hit for a traced task")
	}

	// Cache disabled: always a miss.
	if _, ok := New(Options{CacheSize: -1, Metrics: obs.NewRegistry()}).Lookup(task); ok {
		t.Fatal("Lookup hit with memoization disabled")
	}
}

// TestLookupSkipsInFlightAndFailed pins the two subtle misses: an entry
// still being computed by another goroutine (peeking must not block the
// caller behind someone else's simulation), and a memoized failure
// (the tier must re-route errors through Evaluate, which owns error
// reporting).
func TestLookupSkipsInFlightAndFailed(t *testing.T) {
	e := New(Options{Workers: 1, Metrics: obs.NewRegistry()})
	task := Task{Params: queuesim.Params{
		ArrivalRate: 0.5,
		Service:     dist.NewExponential(1),
		ServiceRate: 1,
		Timeout:     -1,
		NumQueries:  200,
		Seed:        3,
	}}
	key, err := Fingerprint(task.Params, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate an in-flight owner by starting the entry without
	// finishing it.
	en, owner, _ := e.cache.getOrStart(key)
	if !owner {
		t.Fatal("expected to own the fresh entry")
	}
	if _, ok := e.Lookup(task); ok {
		t.Fatal("Lookup hit an in-flight entry")
	}
	en.finish(queuesim.Prediction{}, errors.New("boom"))
	if _, ok := e.Lookup(task); ok {
		t.Fatal("Lookup hit a memoized failure")
	}
}
