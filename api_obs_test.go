package mdsprint

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"mdsprint/internal/core"
	"mdsprint/internal/profiler"
)

// failingModel errors on every prediction, standing in for a model whose
// training went sour mid-search.
type failingModel struct{}

func (failingModel) Name() string { return "failing" }
func (failingModel) Predict(*profiler.Dataset, core.Scenario) (core.Prediction, error) {
	return core.Prediction{}, errors.New("synthetic prediction failure")
}

func TestBestTimeoutSurfacesPredictionError(t *testing.T) {
	// A model error during the annealing search must come back as an
	// error, not a panic.
	_, _, err := BestTimeout(failingModel{}, &Dataset{}, Condition{}, 100, 10, 1)
	if err == nil {
		t.Fatal("BestTimeout swallowed the prediction error")
	}
	if !strings.Contains(err.Error(), "synthetic prediction failure") {
		t.Fatalf("error %q does not wrap the model's", err)
	}
}

func TestMetricsFacade(t *testing.T) {
	if DefaultMetrics() == nil {
		t.Fatal("no default registry")
	}
	reg := NewMetrics()
	if reg == DefaultMetrics() {
		t.Fatal("NewMetrics returned the default registry")
	}
	reg.Counter("x_total", "").Inc()
	if got := reg.Counter("x_total", "").Value(); got != 1 {
		t.Fatalf("counter %v", got)
	}
}

func TestEventPersistenceFacade(t *testing.T) {
	tr := NewRingTracer(8)
	tr.Event(QueryEvent{Type: "arrival", Time: 1, Query: 0, Value: 2})
	tr.Event(QueryEvent{Type: "departure", Time: 3, Query: 0, Value: 2})
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := SaveEvents(path, tr.Events()); err != nil {
		t.Fatal(err)
	}
	events, err := LoadEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Type != "departure" {
		t.Fatalf("round trip lost events: %+v", events)
	}
}
