GO ?= go

# tier1 is the merge gate: vet + project lint + build + race-enabled
# tests + the disabled-hook overhead check (BenchmarkSimulateOne vs
# BenchmarkSimulateOneTraced; baseline recorded in BENCH_obs.json).
.PHONY: tier1
tier1: vet lint build race bench-obs

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs sprintlint, the project-specific analyzers (determinism,
# float equality, error hygiene, lock copies, exported docs). Exit 1
# means diagnostics; fix them or add a reasoned //lint:ignore.
.PHONY: lint
lint:
	$(GO) run ./cmd/sprintlint

.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

.PHONY: test
test:
	$(GO) test ./...

# The experiments suite runs ~2 minutes without the race detector; the
# detector's 5-10x slowdown overruns go test's default 10m binary
# timeout, so raise it explicitly.
.PHONY: race
race:
	$(GO) test -race -timeout 30m ./...

# fuzz-smoke gives each fuzz target a short randomised shake — enough to
# catch parser and round-trip panics without holding up the gate.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseDist$$' -fuzztime 10s ./internal/dist
	$(GO) test -run '^$$' -fuzz '^FuzzLoadEvents$$' -fuzztime 10s ./internal/trace

.PHONY: bench-obs
bench-obs:
	$(GO) test -run '^$$' -bench 'SimulateOne' -benchmem .

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem .
