GO ?= go

# tier1 is the merge gate: vet + build + race-enabled tests + the
# disabled-hook overhead check (BenchmarkSimulateOne vs
# BenchmarkSimulateOneTraced; baseline recorded in BENCH_obs.json).
.PHONY: tier1
tier1: vet build race bench-obs

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: bench-obs
bench-obs:
	$(GO) test -run '^$$' -bench 'SimulateOne' -benchmem .

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem .
