GO ?= go

# tier1 is the merge gate: vet + project lint + build + race-enabled
# tests + the zero-allocation budget tests (which the race detector's
# instrumentation would skew, so they get a non-race run of their own) +
# the disabled-hook overhead check (BenchmarkSimulateOne vs
# BenchmarkSimulateOneTraced; baseline recorded in BENCH_obs.json).
.PHONY: tier1
tier1: vet lint lint-debt build race alloc-check bench-obs

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs sprintlint, the project-specific analyzers: the file-local
# suite (float equality, error hygiene, lock copies, exported docs) plus
# the interprocedural pair (hotalloc over //sprint:hotpath closures,
# detflow determinism taint). -j 0 analyzes packages on all cores;
# output is bit-identical at any job count. Exit 1 means diagnostics;
# fix them or add a reasoned //lint:ignore (which becomes ledger debt —
# see lint-debt).
.PHONY: lint
lint:
	$(GO) run ./cmd/sprintlint -j 0

# lint-sarif emits the same run as SARIF 2.1.0 for CI's code-scanning
# upload, so findings land as inline annotations on the PR diff.
.PHONY: lint-sarif
lint-sarif:
	$(GO) run ./cmd/sprintlint -j 0 -format sarif > sprintlint.sarif || true
	@test -s sprintlint.sarif

# lint-debt enforces the suppression-debt ledger: every //lint:ignore is
# counted against the per-analyzer ceilings in lint-baseline.json, and
# the build fails if any analyzer's count rises above its ceiling. Pay
# debt down (or consciously accept more) with:
#   go run ./cmd/sprintlint -debt -write-baseline
.PHONY: lint-debt
lint-debt:
	$(GO) run ./cmd/sprintlint -debt

.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# -shuffle=on randomises test (and subtest) execution order each run,
# so accidental inter-test state dependencies surface instead of hiding
# behind source order.
.PHONY: test
test:
	$(GO) test -shuffle=on ./...

# cover is the coverage ratchet: the engine-critical packages must not
# drop below the floors recorded here (a few points under measured, so
# refactors have headroom but regressions fail loudly). Raise a floor
# when its package's coverage rises; never lower one to make CI pass.
.PHONY: cover
cover:
	@set -e; \
	check() { \
		pct=$$($(GO) test -count=1 -cover $$1 | \
			sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage for $$1"; exit 1; fi; \
		echo "$$1: $$pct% (floor $$2%)"; \
		if awk -v p="$$pct" -v f="$$2" 'BEGIN { exit !(p < f) }'; then \
			echo "cover: $$1 fell below its $$2% floor"; exit 1; fi; \
	}; \
	check ./internal/sweep 90; \
	check ./internal/queuesim 93; \
	check ./internal/queuesim/dispatch 90; \
	check ./internal/sim 95; \
	check ./internal/explore 95; \
	check ./internal/fault 90; \
	check ./internal/online 90; \
	check ./internal/obs 90; \
	check ./internal/trace 90; \
	check ./internal/lint 90; \
	check ./internal/httpharness 85; \
	check ./internal/server 80; \
	check ./internal/tier 90; \
	check ./internal/queuesim/analytic 95

# The experiments suite runs ~2 minutes without the race detector; the
# detector's 5-10x slowdown overruns go test's default 10m binary
# timeout, so raise it explicitly.
.PHONY: race
race:
	$(GO) test -race -timeout 30m ./...

# fuzz-smoke gives each fuzz target a short randomised shake — enough to
# catch parser and round-trip panics without holding up the gate.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseDist$$' -fuzztime 10s ./internal/dist
	$(GO) test -run '^$$' -fuzz '^FuzzLoadEvents$$' -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzChromeTraceExport$$' -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzRateEstimator$$' -fuzztime 10s ./internal/online
	$(GO) test -run '^$$' -fuzz '^FuzzRunDeterminism$$' -fuzztime 10s ./internal/queuesim
	$(GO) test -run '^$$' -fuzz '^FuzzParseDiscipline$$' -fuzztime 10s ./internal/queuesim
	$(GO) test -run '^$$' -fuzz '^FuzzSuppressionParse$$' -fuzztime 10s ./internal/lint
	$(GO) test -run '^$$' -fuzz '^FuzzParseTierSpec$$' -fuzztime 10s ./internal/tier
	$(GO) test -run '^$$' -fuzz '^FuzzTierEscalation$$' -fuzztime 10s ./internal/tier

# soak runs the sprintd daemon's end-to-end robustness scenario under
# the race detector: concurrent tenants through chaos transports, a
# scripted outage and a scripted panic, an overload burst that must
# shed, a hot reload mid-traffic, a clean drain and a kill-and-restore
# with bit-identical ledger continuation. -count=1 defeats the cache —
# a soak that didn't run proves nothing.
.PHONY: soak
soak:
	$(GO) test -race -count=1 -run 'TestDaemonSoak' -v -timeout 5m ./internal/server/

# chaos replays every built-in fault-injection scenario against the
# graceful-degradation controller and fails if any scripted expectation
# (deepest level reached, level settled at) is violated.
.PHONY: chaos
chaos:
	$(GO) run ./cmd/sprintctl -quiet chaos -all

# bench-obs records the tracing overhead (nil vs ring vs span+ring; see
# BENCH_obs.json) and then enforces the regression floors in test form:
# ring tracing <=2x the nil-tracer run, span tracing <=15% over ring.
.PHONY: bench-obs
bench-obs:
	$(GO) test -run '^$$' -bench 'SimulateOne' -benchmem .
	MDSPRINT_BENCH_OBS=1 $(GO) test -count=1 -run 'TestObsOverheadBudget' .

# alloc-check runs the testing.AllocsPerRun budget tests that pin the
# simulator hot path at zero steady-state allocations. They self-skip
# under -race (instrumentation allocates), so the merge gate runs them
# here without it; -count=1 defeats the test cache.
.PHONY: alloc-check
alloc-check:
	$(GO) test -count=1 -run 'ZeroAllocs' ./internal/queuesim ./internal/sim ./internal/server ./internal/tier

# bench-tier measures the staged RT estimator against always-full
# evaluation on the mixed stationary query stream (baseline recorded in
# BENCH_tier.json), then enforces the merge floors in test form: >=5x
# median decide speedup with a cheap-tier hit rate >=70%.
.PHONY: bench-tier
bench-tier:
	$(GO) test -run '^$$' -bench 'Decide' -benchmem -count 3 ./internal/tier/
	MDSPRINT_BENCH_TIER=1 $(GO) test -count=1 -run 'TestTierSpeedupBudget' ./internal/tier/

# bench-sim measures the pooled simulator hot path against the retired
# heap-and-closure reference engine (Run, RunReps) plus the calibration
# probe that drives it (SimulateRT). Baseline in BENCH_sim.json; the
# pooled RunReps must stay >=2x faster than the reference.
.PHONY: bench-sim
bench-sim:
	$(GO) test -run '^$$' -bench 'BenchmarkSim(Run|RunInto|RunReference|RunReps|RunRepsReference|RunRepsSRPT)$$' -benchmem ./internal/queuesim/
	$(GO) test -run '^$$' -bench 'SimulateRT' -benchmem ./internal/calib/

# bench-sweep measures the policy-sweep engine: serial vs sharded
# throughput and the memoized path (baseline recorded in
# BENCH_sweep.json; sharded gains need >1 CPU).
.PHONY: bench-sweep
bench-sweep:
	$(GO) test -run '^$$' -bench 'Sweep(Serial|Sharded|Cached)' -benchmem ./internal/sweep/

# bench-serve measures the sprintd serving path: the in-process
# decision/observation hot path (which must stay at 0 allocs/op — see
# alloc-check), the full HTTP round trip, and the shed path (rejection
# must stay cheaper than service, or overload amplifies). Baseline in
# BENCH_serve.json.
.PHONY: bench-serve
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchmem ./internal/server/

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem .
